"""Regression: crashing a worker must never leak its file.

A file whose ``file_done`` has reached ``file_size`` exactly at a step
boundary is *delivered* — the step loop just hasn't retired it yet.  The
old ``done < size`` guard in ``TransferSession.crash_worker`` treated
that worker as fileless: the crash neither counted the file completed
nor requeued it, so bytes and file counts leaked under fault injection.
"""

from __future__ import annotations

from repro.testbeds.presets import emulab_fig4
from repro.transfer.dataset import uniform_dataset
from repro.transfer.session import TransferParams
from repro.units import MB


def make_session(files=4, file_bytes=10 * MB):
    tb = emulab_fig4()
    return tb.new_session(
        uniform_dataset(files, file_bytes),
        params=TransferParams(concurrency=1),
    )


class TestCrashAccounting:
    def test_crash_on_exactly_finished_file_counts_it_completed(self):
        session = make_session(files=4)
        assert session.has_file[0]
        session.file_done[0] = session.file_size[0]  # delivered, not yet retired

        session.crash_worker(0)

        assert session.files_completed == 1
        assert session.files_requeued == 0
        assert not session.has_file[0]
        # The delivered file must not re-enter the queue: the remaining
        # population is exactly the files never handed out.
        assert session.queue.remaining_files == 3

    def test_crash_mid_file_requeues_with_progress(self):
        session = make_session(files=4)
        size = float(session.file_size[0])
        session.file_done[0] = size / 2

        session.crash_worker(0)

        assert session.files_completed == 0
        assert session.files_requeued == 1
        assert session.queue.remaining_files == 4  # 3 untouched + the requeued one
        # Progress and the bumped attempt count ride along.
        session.assign_files()
        popped = [
            (float(session.file_size[0]), float(session.file_done[0]), int(session.attempts[0]))
        ]
        while session.queue.remaining_files:
            session.has_file[0] = False
            session.assign_files()
            popped.append(
                (float(session.file_size[0]), float(session.file_done[0]), int(session.attempts[0]))
            )
        assert (size, size / 2, 1) in popped

    def test_crash_conserves_file_count(self):
        # completed + requeued-in-queue + in-flight == total, for every
        # crash timing (empty worker, mid-file, exactly-done).
        session = make_session(files=3)
        session.crash_worker(0)  # mid-file (done == 0): requeue
        session.assign_files()
        session.file_done[0] = session.file_size[0]
        session.crash_worker(0)  # exactly done: completed
        session.assign_files()
        in_flight = int(session.has_file.sum())
        assert session.files_completed + session.queue.remaining_files + in_flight == 3
