"""Fault injector behaviour against a live simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkOutage,
    LossBurst,
    StorageBrownout,
    TransferStall,
    WorkerCrash,
)
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngStreams
from repro.testbeds.presets import emulab_fig4, hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import MB


def make_rig(testbed_factory=emulab_fig4, concurrency=4, files=400, file_bytes=50 * MB):
    tb = testbed_factory()
    engine = SimulationEngine(dt=0.1)
    net = FluidTransferNetwork(engine)
    session = tb.new_session(
        uniform_dataset(files, file_bytes),
        params=TransferParams(concurrency=concurrency),
        repeat=True,
    )
    net.add_session(session)
    return tb, engine, net, session


def goodput_over(session, engine, span):
    before = session.total_good_bytes
    engine.run_for(span)
    return (session.total_good_bytes - before) * 8.0 / span


class TestLinkOutage:
    def test_outage_zeroes_throughput_then_recovers(self):
        tb, engine, net, session = make_rig()
        plan = FaultPlan(events=(LinkOutage(at=20.0, duration=10.0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0)).arm()

        healthy = goodput_over(session, engine, 19.0)
        engine.run_for(3.0)  # inside the outage (t in [22, 25))
        down = goodput_over(session, engine, 5.0)
        engine.run_for(3.0)  # past recovery at t=30
        recovered = goodput_over(session, engine, 10.0)

        assert healthy > 0
        assert down < 0.01 * healthy
        assert recovered > 0.5 * healthy

    def test_outage_drops_all_packets(self):
        tb, engine, net, session = make_rig()
        plan = FaultPlan(events=(LinkOutage(at=5.0, duration=5.0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0)).arm()
        engine.run_for(8.0)
        assert session.current_loss == pytest.approx(1.0)
        engine.run_for(5.0)
        assert session.current_loss < 0.5

    def test_outage_taints_samples(self):
        tb, engine, net, session = make_rig()
        plan = FaultPlan(events=(LinkOutage(at=5.0, duration=5.0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0)).arm()

        engine.run_for(4.0)
        assert session.monitor.take(concurrency=4).valid

        engine.run_for(3.0)  # straddles the outage start
        assert not session.monitor.take(concurrency=4).valid

        engine.run_for(4.0)  # straddles the recovery at t=10
        assert not session.monitor.take(concurrency=4).valid

        engine.run_for(5.0)  # entirely after recovery
        assert session.monitor.take(concurrency=4).valid

    def test_log_records_outage_and_recovery(self):
        tb, engine, net, session = make_rig()
        plan = FaultPlan(events=(LinkOutage(at=5.0, duration=5.0),))
        inj = FaultInjector(engine, net, plan, streams=RngStreams(0)).arm()
        engine.run_for(15.0)
        kinds = [r.kind for r in inj.log]
        assert kinds == ["outage", "outage-end"]
        assert inj.records("outage")[0].time == pytest.approx(5.0)
        assert inj.records("outage-end")[0].time == pytest.approx(10.0)

    def test_outage_without_sessions_is_skipped(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        plan = FaultPlan(events=(LinkOutage(at=1.0, duration=5.0),))
        inj = FaultInjector(engine, net, plan, streams=RngStreams(0)).arm()
        engine.run_for(10.0)
        assert [r.kind for r in inj.log] == ["outage-skip"]


class TestLossBurst:
    def test_burst_raises_loss_then_clears(self):
        tb, engine, net, session = make_rig()
        plan = FaultPlan(events=(LossBurst(at=10.0, duration=10.0, loss=0.2),))
        FaultInjector(engine, net, plan, streams=RngStreams(0)).arm()
        engine.run_for(9.0)
        base_loss = session.current_loss
        engine.run_for(6.0)  # inside the burst
        burst_loss = session.current_loss
        engine.run_for(10.0)  # after it clears at t=20
        after_loss = session.current_loss
        assert burst_loss >= base_loss + 0.15
        assert after_loss < base_loss + 0.05


class TestStorageBrownout:
    def test_brownout_degrades_and_restores(self):
        # hpclab is disk-bound, so a write-side brownout must bite.
        tb, engine, net, session = make_rig(hpclab, concurrency=9, file_bytes=200 * MB)
        plan = FaultPlan(
            events=(StorageBrownout(at=20.0, duration=15.0, factor=0.25, host="destination"),)
        )
        FaultInjector(engine, net, plan, streams=RngStreams(0)).arm()

        healthy = goodput_over(session, engine, 19.0)
        engine.run_for(4.0)
        browned = goodput_over(session, engine, 10.0)
        engine.run_for(3.0)  # past restore at t=35
        restored = goodput_over(session, engine, 15.0)

        assert browned < 0.5 * healthy
        assert restored > 0.8 * healthy
        # The original storage object is restored, not a copy.
        assert tb.destination.storage.aggregate_write_bps == hpclab().destination.storage.aggregate_write_bps


class TestWorkerFaults:
    def test_worker_crash_requeues_file_with_progress(self):
        tb, engine, net, session = make_rig()
        plan = FaultPlan(events=(WorkerCrash(at=10.0, worker=0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0)).arm()
        engine.run_for(9.9)
        assert session.has_file[0]
        engine.run_for(0.2)
        assert session.worker_crashes == 1
        assert session.files_requeued == 1
        # The crashed worker pays the spawn overhead again.
        assert session.gap_left[0] > 0

    def test_stall_freezes_one_worker(self):
        tb, engine, net, session = make_rig()
        plan = FaultPlan(events=(TransferStall(at=10.0, duration=8.0, worker=1),))
        FaultInjector(engine, net, plan, streams=RngStreams(0)).arm()
        engine.run_for(10.05)
        frozen_done = float(session.file_done[1])
        frozen_size = float(session.file_size[1])
        engine.run_for(4.0)  # mid-stall
        assert session.stalled_workers().tolist() == [1]
        assert float(session.file_done[1]) == frozen_done
        assert float(session.file_size[1]) == frozen_size
        # Other workers keep moving.
        assert session.total_good_bytes > 0
        engine.run_for(6.0)  # stall drains at t=18
        assert session.stalled_workers().size == 0
        assert session.stalled_seconds == pytest.approx(8.0, abs=0.2)
        assert float(session.file_done[1]) > frozen_done or float(session.file_size[1]) != frozen_size

    def test_random_target_pick_is_deterministic(self):
        picks = []
        for _ in range(2):
            tb, engine, net, session = make_rig()
            plan = FaultPlan(events=(WorkerCrash(at=5.0),))
            inj = FaultInjector(engine, net, plan, streams=RngStreams(42)).arm()
            engine.run_for(6.0)
            picks.append(inj.log[0].target)
        assert picks[0] == picks[1]


class TestArming:
    def test_double_arm_rejected(self):
        tb, engine, net, session = make_rig()
        inj = FaultInjector(engine, net, FaultPlan(), streams=RngStreams(0)).arm()
        with pytest.raises(RuntimeError):
            inj.arm()

    def test_fault_free_plan_is_bit_identical_to_no_injector(self):
        # Arming an empty plan must not perturb the simulation at all.
        results = []
        for with_injector in (False, True):
            tb, engine, net, session = make_rig()
            if with_injector:
                FaultInjector(engine, net, FaultPlan(), streams=RngStreams(0)).arm()
            engine.run_for(30.0)
            results.append((session.total_good_bytes, session.total_lost_bytes))
        assert results[0] == results[1]
