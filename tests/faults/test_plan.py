"""Fault plan and chaos preset tests."""

from __future__ import annotations

import pytest

from repro.faults import (
    CHAOS_PRESETS,
    ChaosRng,
    FaultPlan,
    JobCrash,
    LinkOutage,
    LossBurst,
    StorageBrownout,
    TransferStall,
    WorkerCrash,
    chaos_plan,
)
from repro.sim.rng import RngStreams


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            LinkOutage(at=-1.0)

    def test_zero_duration_outage_rejected(self):
        with pytest.raises(ValueError):
            LinkOutage(at=0.0, duration=0.0)

    def test_burst_loss_bounds(self):
        with pytest.raises(ValueError):
            LossBurst(at=0.0, loss=0.0)
        with pytest.raises(ValueError):
            LossBurst(at=0.0, loss=1.5)

    def test_brownout_factor_bounds(self):
        with pytest.raises(ValueError):
            StorageBrownout(at=0.0, factor=1.0)
        with pytest.raises(ValueError):
            StorageBrownout(at=0.0, factor=0.0)

    def test_stall_duration_positive(self):
        with pytest.raises(ValueError):
            TransferStall(at=0.0, duration=-1.0)

    def test_events_are_frozen(self):
        ev = WorkerCrash(at=5.0)
        with pytest.raises(AttributeError):
            ev.at = 10.0


class TestFaultPlan:
    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultPlan(events=("not a fault",))

    def test_empty_plan_is_valid(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.last_time == 0.0
        assert plan.describe() == "(no faults)"

    def test_last_time_includes_recovery(self):
        plan = FaultPlan(events=(LinkOutage(at=10.0, duration=5.0), JobCrash(at=12.0)))
        assert plan.last_time == 15.0

    def test_describe_is_time_ordered(self):
        plan = FaultPlan(
            events=(WorkerCrash(at=30.0), LinkOutage(at=10.0, duration=2.0))
        )
        lines = plan.describe().splitlines()
        assert lines[0].startswith("t=10")
        assert lines[1].startswith("t=30")


class TestChaosPresets:
    def test_known_presets_expand(self):
        for name in CHAOS_PRESETS:
            rng = ChaosRng(RngStreams(7), name="presets-test")
            plan = chaos_plan(name, horizon=300.0, rng=rng)
            assert isinstance(plan, FaultPlan)
            for ev in plan:
                assert 0.0 <= ev.at <= 300.0
                assert ev.at + getattr(ev, "duration", 0.0) <= 300.0 + 1e-9

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos preset"):
            chaos_plan("nonsense", horizon=100.0, rng=ChaosRng(RngStreams(0)))

    def test_same_seed_same_plan(self):
        a = chaos_plan("hostile", horizon=240.0, rng=ChaosRng(RngStreams(3)))
        b = chaos_plan("hostile", horizon=240.0, rng=ChaosRng(RngStreams(3)))
        assert a == b

    def test_different_seed_different_plan(self):
        a = chaos_plan("hostile", horizon=240.0, rng=ChaosRng(RngStreams(3)))
        b = chaos_plan("hostile", horizon=240.0, rng=ChaosRng(RngStreams(4)))
        assert a != b

    def test_hostile_includes_job_crash(self):
        plan = chaos_plan("hostile", horizon=240.0, rng=ChaosRng(RngStreams(0)))
        assert any(isinstance(ev, JobCrash) for ev in plan)

    def test_chaos_stream_does_not_perturb_others(self):
        # Drawing the chaos plan must not shift any other named stream.
        streams = RngStreams(11)
        before = streams.get("measurement").random()
        streams2 = RngStreams(11)
        chaos_plan("hostile", horizon=240.0, rng=ChaosRng(streams2))
        after = streams2.get("measurement").random()
        assert before == after
