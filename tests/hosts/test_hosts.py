"""NIC, CPU, and DTN tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hosts.cpu import CpuModel
from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic
from repro.storage.parallel_fs import ParallelFileSystem
from repro.units import Gbps


class TestNic:
    def test_validation(self):
        with pytest.raises(ValueError):
            Nic(capacity=0.0)

    def test_allocation_caps_at_line_rate(self):
        nic = Nic(capacity=10 * Gbps)
        alloc = nic.allocate(np.array([8e9, 8e9]))
        assert alloc.sum() == pytest.approx(10e9)
        assert np.allclose(alloc, 5e9)

    def test_allocation_under_capacity(self):
        nic = Nic(capacity=10 * Gbps)
        alloc = nic.allocate(np.array([1e9, 2e9]))
        assert np.allclose(alloc, [1e9, 2e9])


class TestCpuModel:
    def test_full_efficiency_within_cores(self):
        cpu = CpuModel(cores=24)
        assert cpu.efficiency(1) == 1.0
        assert cpu.efficiency(24) == 1.0

    def test_oversubscription_degrades(self):
        cpu = CpuModel(cores=24, oversubscription_penalty=0.3)
        assert cpu.efficiency(48) < 1.0
        assert cpu.efficiency(96) < cpu.efficiency(48)

    def test_floor(self):
        cpu = CpuModel(cores=4, oversubscription_penalty=10.0, floor=0.4)
        assert cpu.efficiency(1000) == pytest.approx(0.4)

    def test_monotone_decreasing(self):
        cpu = CpuModel(cores=16)
        effs = [cpu.efficiency(n) for n in range(1, 200, 10)]
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuModel(cores=0)
        with pytest.raises(ValueError):
            CpuModel(floor=0.0)
        with pytest.raises(ValueError):
            CpuModel(oversubscription_penalty=-1.0)


class TestDataTransferNode:
    def test_composition_defaults(self):
        dtn = DataTransferNode("dtn-1")
        assert isinstance(dtn.storage, ParallelFileSystem)
        assert isinstance(dtn.nic, Nic)
        assert isinstance(dtn.cpu, CpuModel)

    def test_custom_parts(self):
        storage = ParallelFileSystem(name="custom")
        dtn = DataTransferNode("dtn-2", storage=storage, nic=Nic(40 * Gbps))
        assert dtn.storage.name == "custom"
        assert dtn.nic.capacity == 40 * Gbps
