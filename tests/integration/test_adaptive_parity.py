"""Adaptive-stepping parity: event-driven jumps must reproduce fixed-dt.

The adaptive engine (ISSUE 9) replaces runs of steady-state fixed-dt
steps with one closed-form jump over the same grid.  The jump evaluates
the oracle's discretized TCP ramp exactly (geometric series instead of
step-by-step accumulation), so the only divergence allowed is float
round-off — these tests pin that contract on the same scenarios the
batched parity suite uses:

* the 256-session metro ring, where steady state dominates and a single
  jump can cover most of the horizon;
* the 8 x 64 competing-backbone scenario with small files and injected
  faults (stall, crash, loss burst, outage, concurrency change), where
  dense completions and epoch bumps force constant cache invalidation —
  adaptive must degrade gracefully to normal steps and stay correct;
* same-seed adaptive replay, which must be byte-identical (the adaptive
  trajectory is just as deterministic as the fixed one).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultInjector
from repro.faults.plan import FaultPlan, LinkOutage, LossBurst, TransferStall, WorkerCrash
from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic
from repro.network.link import Link
from repro.network.path import Path
from repro.network.queue import DropTailLossModel, NoLossModel
from repro.obs import InMemoryExporter, use_tracing
from repro.obs.events import AdaptiveJump
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngStreams
from repro.storage.parallel_fs import ParallelFileSystem
from repro.testbeds.base import Testbed
from repro.testbeds.presets import metro
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import GB, Gbps, MB, milliseconds

from tests.integration.test_batch_parity import session_state

#: Closed-form jumps resum the oracle's per-step geometric series, so
#: agreement is float round-off, not bit-identity.  In practice the
#: metro scenario lands around 1e-15 relative; 1e-9 leaves headroom
#: without ever excusing a modelling error.
ADAPTIVE_RTOL = 1e-9

INT_KEYS = ("files", "requeued", "crashes", "has_file", "attempts")
FLOAT_KEYS = (
    "good",
    "lost",
    "stalled_s",
    "process_s",
    "loss",
    "rates",
    "file_size",
    "file_done",
    "gap_left",
    "stall_left",
    "monitor_elapsed",
)


def assert_states_close(adaptive: list[dict], fixed: list[dict]) -> None:
    assert len(adaptive) == len(fixed)
    for got, want in zip(adaptive, fixed):
        for key in INT_KEYS:
            assert got[key] == want[key], key
        assert (got["finished"] is None) == (want["finished"] is None)
        if got["finished"] is not None:
            assert got["finished"] == pytest.approx(want["finished"], abs=1e-9)
        for key in FLOAT_KEYS:
            np.testing.assert_allclose(
                got[key], want[key], rtol=ADAPTIVE_RTOL, atol=1e-9, err_msg=key
            )


def run_metro(adaptive: bool, sim_time: float = 3.0) -> list[dict]:
    """The 256-session metro ring: long steady-state spans."""
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine, batched=True, adaptive=adaptive)
    sessions = []
    for tb in metro():
        session = tb.new_session(
            uniform_dataset(64, 1 * GB),
            params=TransferParams(concurrency=64, parallelism=2),
            repeat=True,
        )
        network.add_session(session)
        sessions.append(session)
    engine.run_for(sim_time)
    return [session_state(s) for s in sessions]


def run_faulted_competition(adaptive: bool) -> list[dict]:
    """8 x 64 on one backbone with every fault class the jump must survive.

    Small files keep completions dense (forcing normal steps through
    the demand-epoch bumps); the loss burst and outage exercise the
    link-epoch and topology invalidation paths mid-run; the direct
    stall/crash/concurrency events hit the session-level hooks.
    """
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine, batched=True, adaptive=adaptive)
    backbone = Link(
        "backbone", 10 * Gbps, delay=milliseconds(10), loss_model=DropTailLossModel()
    )
    lossless = NoLossModel()
    sessions = []
    for i in range(8):
        src = DataTransferNode(
            f"src-{i}",
            storage=ParallelFileSystem(name=f"pfs-{i}"),
            nic=Nic(40 * Gbps, name=f"nic-s{i}"),
        )
        dst = DataTransferNode(
            f"dst-{i}",
            storage=ParallelFileSystem(name=f"pfs-{i}d"),
            nic=Nic(40 * Gbps, name=f"nic-d{i}"),
        )
        path = Path(
            links=(
                Link(f"edge-s{i}", 40 * Gbps, delay=milliseconds(1), loss_model=lossless),
                backbone,
                Link(f"edge-d{i}", 40 * Gbps, delay=milliseconds(1), loss_model=lossless),
            ),
            name=f"path-{i}",
        )
        tb = Testbed(
            name=f"site-{i}",
            source=src,
            destination=dst,
            path=path,
            sample_interval=5.0,
            bottleneck="Network",
        )
        session = tb.new_session(
            uniform_dataset(400, 8 * MB),
            name=f"s{i}",
            params=TransferParams(concurrency=64, parallelism=2),
            repeat=True,
        )
        network.add_session(session)
        sessions.append(session)

    plan = FaultPlan(
        (
            TransferStall(at=2.0, session="s3", worker=10, duration=1.7),
            WorkerCrash(at=3.0, session="s5", worker=0),
            LossBurst(at=3.5, duration=2.0, loss=0.05),
            LinkOutage(at=5.5, duration=1.0),
        )
    )
    FaultInjector(engine, network, plan, streams=RngStreams(11)).arm()
    engine.schedule_at(4.0, lambda: sessions[1].set_concurrency(48))
    engine.run_for(8.0)
    return [session_state(s) for s in sessions]


class TestAdaptiveParity:
    def test_metro_matches_fixed_dt(self):
        assert_states_close(run_metro(adaptive=True), run_metro(adaptive=False))

    def test_faulted_competition_matches_fixed_dt(self):
        assert_states_close(
            run_faulted_competition(adaptive=True),
            run_faulted_competition(adaptive=False),
        )

    def test_same_seed_adaptive_replay_is_byte_identical(self):
        assert run_faulted_competition(adaptive=True) == run_faulted_competition(
            adaptive=True
        )

    def test_adaptive_jumps_actually_taken(self):
        # The steady metro run must coalesce steps — otherwise the
        # parity above is vacuous.  Every jump's span sits on the fixed
        # grid (an integer multiple of the step it replaced).
        mem = InMemoryExporter()
        with use_tracing(mem):
            run_metro(adaptive=True)
        jumps = [e for e in mem.events if isinstance(e, AdaptiveJump)]
        assert jumps, "steady-state metro run produced no adaptive jumps"
        assert sum(j.skipped for j in jumps) > 0
        for j in jumps:
            assert j.dt == pytest.approx(j.step_s * (j.skipped + 1), rel=1e-12)

    def test_fixed_dt_run_emits_no_jump_events(self):
        mem = InMemoryExporter()
        with use_tracing(mem):
            run_metro(adaptive=False, sim_time=1.0)
        assert not [e for e in mem.events if isinstance(e, AdaptiveJump)]
