"""Property-based adaptive/fixed agreement under chaos presets.

The parity suite pins two hand-picked scenarios; this one lets
Hypothesis draw the seed so the chaos plan (event mix, timings,
intensities, runtime target picks) varies across examples.  For every
draw, an adaptive run and a fixed-dt run of the same seeded scenario
must agree on the workload-level outcomes ISSUE 9 names: total good
bytes (within rtol), per-session completion counts, and terminal job
states.  ``calm`` keeps faults to stalls and crashes (demand-epoch
churn); ``flaky-network`` adds loss bursts and outages (link-epoch and
topology churn) — between them every cache-invalidation path gets
exercised with adversarial timing.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.faults import ChaosRng, FaultInjector, chaos_plan  # noqa: E402
from repro.sim.engine import SimulationEngine  # noqa: E402
from repro.sim.rng import RngStreams  # noqa: E402
from repro.testbeds.presets import emulab  # noqa: E402
from repro.transfer.dataset import uniform_dataset  # noqa: E402
from repro.transfer.executor import FluidTransferNetwork  # noqa: E402
from repro.transfer.session import TransferParams  # noqa: E402
from repro.units import MB  # noqa: E402

DT = 0.1
HORIZON = 120.0
RTOL = 1e-6


def run_chaos(seed: int, preset: str, adaptive: bool) -> list:
    """Three finite emulab transfers under a seeded chaos plan.

    Finite datasets (``repeat=False``) let sessions actually reach a
    terminal state inside the horizon, so the test can compare
    completion outcomes and not just byte counters.
    """
    engine = SimulationEngine(dt=DT)
    network = FluidTransferNetwork(engine, batched=True, adaptive=adaptive)
    sessions = []
    for i in range(3):
        session = emulab().new_session(
            uniform_dataset(12, 20 * MB),
            name=f"s{i}",
            params=TransferParams(concurrency=4, parallelism=2),
        )
        network.add_session(session)
        sessions.append(session)
    streams = RngStreams(seed)
    plan = chaos_plan(preset, horizon=0.7 * HORIZON, rng=ChaosRng(streams))
    FaultInjector(engine, network, plan, streams=streams).arm()
    engine.run_for(HORIZON)
    return sessions


@pytest.mark.parametrize("preset", ["calm", "flaky-network"])
class TestAdaptiveChaosAgreement:
    @settings(max_examples=5, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_outcomes_match_fixed_dt(self, preset, seed):
        adaptive = run_chaos(seed, preset, adaptive=True)
        fixed = run_chaos(seed, preset, adaptive=False)
        for a, f in zip(adaptive, fixed):
            assert a.total_good_bytes == pytest.approx(
                f.total_good_bytes, rel=RTOL, abs=1.0
            )
            assert a.files_completed == f.files_completed
            assert a.worker_crashes == f.worker_crashes
            # Terminal state: finished-ness must agree exactly; the
            # completion timestamp may shift by at most one grid step
            # when round-off moves a file's last byte across a step
            # boundary.
            assert (a.finished_at is None) == (f.finished_at is None)
            if a.finished_at is not None:
                assert abs(a.finished_at - f.finished_at) <= DT + 1e-9
