"""Batched-engine parity: the BatchStore path must reproduce the
per-session path exactly.

The batched refactor (ISSUE 6) is gated on this test: the contiguous
global-array advance in `repro.sim.batch.BatchStore` promises the same
simulation outcomes as the per-session reference path, down to the last
float bit on the golden scenarios.  Three rules make bit-identity
achievable (same elementwise expressions, contiguous-slice reductions,
per-worker cascade in worker order — see the `repro.sim.batch` module
docstring); this test is what holds the implementation to them.

Scenarios:

* the existing golden hot-path scenario (mid-run concurrency and
  parallelism changes, a session finishing and leaving) — bit-identical;
* an 8 x 64 competing-backbone scenario with small files (dense
  completion cascades), an injected stall, and an injected crash —
  bit-identical;
* the 256-session metro ring preset — compared at rel=1e-12: the
  scenario is two orders of magnitude larger, so we document a
  tolerance rather than promise bit-equality at a scale no golden
  pins, but in practice the paths agree exactly there too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic
from repro.network.link import Link
from repro.network.path import Path
from repro.network.queue import DropTailLossModel, NoLossModel
from repro.sim.engine import SimulationEngine
from repro.storage.parallel_fs import ParallelFileSystem
from repro.testbeds.base import Testbed
from repro.testbeds.presets import metro
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams, TransferSession
from repro.units import GB, Gbps, MB, milliseconds

from tests.integration.test_golden_hotpath import run_scenario as run_golden_scenario


def session_state(s: TransferSession) -> dict:
    """Everything a fluid step can touch, exactly as stored."""
    return {
        "good": s.total_good_bytes,
        "lost": s.total_lost_bytes,
        "files": s.files_completed,
        "requeued": s.files_requeued,
        "crashes": s.worker_crashes,
        "stalled_s": s.stalled_seconds,
        "process_s": s.process_seconds,
        "loss": s.current_loss,
        "finished": s.finished_at,
        "rates": s.rates.tolist(),
        "file_size": s.file_size.tolist(),
        "file_done": s.file_done.tolist(),
        "gap_left": s.gap_left.tolist(),
        "stall_left": s.stall_left.tolist(),
        "attempts": s.attempts.tolist(),
        "has_file": s.has_file.tolist(),
        "monitor_elapsed": s.monitor.elapsed,
    }


def run_competition(batched: bool) -> list[dict]:
    """8 sessions x 64 workers, one saturated backbone, faults injected.

    Small files keep the completion cascade dense (many workers finish
    per step), and the scheduled stall/crash exercise the batched stall
    branch and the view write-through of fault injection.
    """
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine, batched=batched)
    backbone = Link(
        "backbone", 10 * Gbps, delay=milliseconds(10), loss_model=DropTailLossModel()
    )
    lossless = NoLossModel()
    sessions = []
    for i in range(8):
        src = DataTransferNode(
            f"src-{i}",
            storage=ParallelFileSystem(name=f"pfs-{i}"),
            nic=Nic(40 * Gbps, name=f"nic-s{i}"),
        )
        dst = DataTransferNode(
            f"dst-{i}",
            storage=ParallelFileSystem(name=f"pfs-{i}d"),
            nic=Nic(40 * Gbps, name=f"nic-d{i}"),
        )
        path = Path(
            links=(
                Link(f"edge-s{i}", 40 * Gbps, delay=milliseconds(1), loss_model=lossless),
                backbone,
                Link(f"edge-d{i}", 40 * Gbps, delay=milliseconds(1), loss_model=lossless),
            ),
            name=f"path-{i}",
        )
        tb = Testbed(
            name=f"site-{i}",
            source=src,
            destination=dst,
            path=path,
            sample_interval=5.0,
            bottleneck="Network",
        )
        session = tb.new_session(
            uniform_dataset(400, 8 * MB),
            name=f"s{i}",
            params=TransferParams(concurrency=64, parallelism=2),
            repeat=True,
        )
        network.add_session(session)
        sessions.append(session)

    engine.schedule_at(2.0, lambda: sessions[3].stall_worker(10, 1.7))
    engine.schedule_at(3.0, lambda: sessions[5].crash_worker(0))
    engine.schedule_at(4.0, lambda: sessions[1].set_concurrency(48))
    engine.run_for(8.0)
    return [session_state(s) for s in sessions]


def run_metro(batched: bool) -> list[dict]:
    """The 256-session metro ring, short horizon."""
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine, batched=batched)
    sessions = []
    for tb in metro():
        session = tb.new_session(
            uniform_dataset(64, 1 * GB),
            params=TransferParams(concurrency=64, parallelism=2),
            repeat=True,
        )
        network.add_session(session)
        sessions.append(session)
    engine.run_for(3.0)
    return [session_state(s) for s in sessions]


class TestBatchParity:
    def test_golden_scenario_bit_identical(self):
        # The existing golden scenario: worker resizes, a parallelism
        # change, and a session completing mid-run.  Exact equality —
        # every float bit, not approx.
        assert run_golden_scenario(batched=True) == run_golden_scenario(batched=False)

    def test_competition_with_faults_bit_identical(self):
        batched = run_competition(batched=True)
        reference = run_competition(batched=False)
        assert batched == reference

    def test_metro_within_documented_tolerance(self):
        batched = run_metro(batched=True)
        reference = run_metro(batched=False)
        for got, want in zip(batched, reference):
            for key in ("files", "requeued", "crashes", "has_file", "attempts"):
                assert got[key] == want[key], key
            for key in (
                "good",
                "lost",
                "stalled_s",
                "process_s",
                "loss",
                "rates",
                "file_size",
                "file_done",
                "gap_left",
                "stall_left",
            ):
                np.testing.assert_allclose(got[key], want[key], rtol=1e-12, err_msg=key)
