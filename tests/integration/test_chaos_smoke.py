"""End-to-end chaos runs: determinism and exactly-once delivery."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import fault_tolerance
from repro.experiments.common import make_context
from repro.faults import ChaosRng, FaultInjector, chaos_plan
from repro.service import FalconService, JobState, RetryPolicy
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.units import GB


def chaos_run(seed: int, files: int = 150, horizon: float = 240.0) -> tuple:
    """One retries-on service run under the hostile preset.

    Returns everything observable about the run, serialized to plain
    strings, so two runs can be compared byte-for-byte.
    """
    ctx = make_context(seed)
    service = FalconService(
        engine=ctx.engine,
        network=ctx.network,
        seed=seed,
        fault_policy=RetryPolicy(),
    )
    dataset = uniform_dataset(files, 1 * GB)
    job = service.submit(hpclab(), dataset, name="payload")
    plan = chaos_plan("hostile", horizon=0.6 * horizon, rng=ChaosRng(ctx.streams))
    injector = FaultInjector(
        ctx.engine,
        ctx.network,
        plan,
        streams=ctx.streams,
        service=service,
        recorder=ctx.recorder,
    ).arm()
    ctx.engine.run_until(horizon)
    return (
        job.state.value,
        repr(dataclasses.astuple(job.report)) if job.report else "",
        repr(job.events),
        "\n".join(str(r) for r in injector.log),
        repr(ctx.recorder.events),
    )


class TestDeterministicReplay:
    def test_same_seed_same_plan_is_byte_identical(self):
        first = chaos_run(seed=7)
        second = chaos_run(seed=7)
        assert first == second

    def test_different_seed_diverges(self):
        # Sanity check that the serialization actually captures the
        # run — different chaos draws must produce a different record.
        assert chaos_run(seed=7)[3] != chaos_run(seed=8)[3]


class TestChaosOutcomes:
    def test_retries_on_delivers_exactly_once_and_off_degrades(self):
        result = fault_tolerance.run(seed=0)
        on = result.runs["retries-on"]
        off = result.runs["retries-off"]

        # Retries on: every file delivered exactly once, job completes.
        assert on.state == JobState.COMPLETED.value
        assert on.files_delivered == on.files_expected
        assert on.bytes_moved == pytest.approx(on.files_expected * 1 * GB)
        assert on.faults_injected > 0

        # Retries off: the job-crash fault is fatal — degradation is
        # visible as a failed (or at best still-running) job that did
        # not deliver the full dataset.
        assert off.state != JobState.COMPLETED.value
        assert off.files_delivered < off.files_expected

        # The table renders both arms.
        rendered = result.render()
        assert "retries-on" in rendered and "retries-off" in rendered
