"""Integration: competing Falcon agents converge to fair shares."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fairness import jain_index
from repro.experiments.common import (
    launch_falcon,
    make_context,
    retire_at,
    window_mean_bps,
)
from repro.testbeds.presets import emulab_fig4, hpclab


class TestTwoAgents:
    @pytest.mark.parametrize("kind", ["gd", "bo"])
    def test_fair_split_on_hpclab(self, kind):
        ctx = make_context(seed=20)
        tb = hpclab()
        a = launch_falcon(ctx, tb, kind=kind, name="a")
        b = launch_falcon(ctx, tb, kind=kind, name="b", start_time=100.0)
        ctx.engine.run_for(320.0)
        shares = np.array(
            [window_mean_bps(a.trace, 260, 320), window_mean_bps(b.trace, 260, 320)]
        )
        assert jain_index(shares) >= 0.90
        assert shares.sum() >= 0.7 * tb.max_throughput()

    def test_total_concurrency_stays_bounded(self):
        """Falcon pairs don't escalate: the Nash point is ~just-enough."""
        ctx = make_context(seed=21)
        tb = emulab_fig4()
        a = launch_falcon(ctx, tb, kind="gd", name="a")
        b = launch_falcon(ctx, tb, kind="gd", name="b", start_time=60.0)
        ctx.engine.run_for(400.0)
        total = (
            a.controller.concurrencies()[-10:].mean()
            + b.controller.concurrencies()[-10:].mean()
        )
        # Saturation needs 10; a regret-free pair would blow far past it.
        assert total <= 30


class TestJoinLeave:
    def test_incumbent_yields_and_reclaims(self):
        ctx = make_context(seed=22)
        tb = hpclab()
        first = launch_falcon(ctx, tb, kind="gd", name="first")
        second = launch_falcon(ctx, tb, kind="gd", name="second", start_time=120.0)
        retire_at(ctx, second, 300.0)
        ctx.engine.run_for(420.0)

        alone = window_mean_bps(first.trace, 60, 120)
        shared = window_mean_bps(first.trace, 240, 300)
        reclaimed = window_mean_bps(first.trace, 360, 420)

        assert shared < 0.7 * alone  # yielded on join
        assert reclaimed > 0.85 * alone  # reclaimed on leave

    def test_three_way_split(self):
        ctx = make_context(seed=23)
        tb = hpclab()
        launches = [
            launch_falcon(ctx, tb, kind="gd", name=f"t{i}", start_time=i * 100.0)
            for i in range(3)
        ]
        ctx.engine.run_for(420.0)
        shares = np.array(
            [window_mean_bps(l.trace, 360, 420) for l in launches]
        )
        assert jain_index(shares) >= 0.85
        # Paper: 7-8 Gbps each for three HPCLab transfers.
        assert np.all(shares > 4e9)
        assert np.all(shares < 13e9)
