"""Determinism: identical seeds must give bit-identical experiments.

Reproducibility is the whole point of a simulation-backed reproduction;
any hidden global randomness or dict-ordering dependence would silently
break the benchmark numbers.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import launch_falcon, make_context
from repro.testbeds.presets import emulab_fig4, hpclab


def run_once(seed: int, kind: str = "gd", duration: float = 120.0):
    ctx = make_context(seed)
    launched = launch_falcon(ctx, hpclab(), kind=kind)
    ctx.engine.run_for(duration)
    agent = launched.controller
    return agent.concurrencies(), agent.throughputs()


class TestDeterminism:
    def test_same_seed_identical_trajectories(self):
        cc1, tp1 = run_once(seed=11)
        cc2, tp2 = run_once(seed=11)
        assert np.array_equal(cc1, cc2)
        assert np.array_equal(tp1, tp2)

    def test_same_seed_identical_bo(self):
        cc1, tp1 = run_once(seed=12, kind="bo")
        cc2, tp2 = run_once(seed=12, kind="bo")
        assert np.array_equal(cc1, cc2)
        assert np.array_equal(tp1, tp2)

    def test_different_seeds_differ(self):
        cc1, _ = run_once(seed=13, kind="bo")
        cc2, _ = run_once(seed=14, kind="bo")
        assert not np.array_equal(cc1, cc2)

    def test_multi_agent_determinism(self):
        def run(seed):
            ctx = make_context(seed)
            tb = emulab_fig4()
            a = launch_falcon(ctx, tb, kind="gd", name="a")
            b = launch_falcon(ctx, tb, kind="gd", name="b", start_time=30.0)
            ctx.engine.run_for(150.0)
            return (
                a.controller.concurrencies(),
                b.controller.concurrencies(),
                np.array(a.trace.throughput_bps),
            )

        r1 = run(21)
        r2 = run(21)
        for x, y in zip(r1, r2):
            assert np.array_equal(x, y)

    def test_experiment_run_deterministic(self):
        from repro.experiments import fig04_overhead

        a = fig04_overhead.run(measure_time=5.0)
        b = fig04_overhead.run(measure_time=5.0)
        assert [(p.throughput_bps, p.loss_rate) for p in a.points] == [
            (p.throughput_bps, p.loss_rate) for p in b.points
        ]
