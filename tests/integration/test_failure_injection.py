"""Integration: Falcon adapts to mid-run condition changes."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.common import launch_falcon, make_context, window_mean_bps
from repro.testbeds.presets import emulab, hpclab
from repro.units import Mbps


class TestBottleneckShifts:
    @pytest.mark.parametrize("kind", ["gd", "bo"])
    def test_recovers_from_storage_slowdown(self, kind):
        """Halving the write array mid-run (hot spot): Falcon re-converges
        near the new, lower optimum instead of thrashing."""
        ctx = make_context(seed=30)
        tb = hpclab()
        launched = launch_falcon(ctx, tb, kind=kind)

        def degrade():
            storage = tb.destination.storage
            tb.destination.storage = replace(
                storage,
                per_process_write_bps=storage.per_process_write_bps / 2,
                aggregate_write_bps=storage.aggregate_write_bps / 2,
            )

        ctx.engine.schedule_at(180.0, degrade)
        ctx.engine.run_for(420.0)
        after = window_mean_bps(launched.trace, 360, 420)
        # New ceiling is 14 Gbps; Falcon should deliver most of it.
        assert after >= 0.75 * 14e9
        assert after <= 14.5e9

    def test_exploits_capacity_increase(self):
        """Un-throttling per-process I/O mid-run: the continuous search
        discovers the higher optimum."""
        ctx = make_context(seed=31)
        tb = emulab(link_bps=200 * Mbps, per_process_bps=10 * Mbps)
        launched = launch_falcon(ctx, tb, kind="gd", hi=40)

        def faster():
            for host in (tb.source, tb.destination):
                storage = host.storage
                host.storage = replace(
                    storage,
                    per_process_read_bps=storage.per_process_read_bps * 2,
                    per_process_write_bps=storage.per_process_write_bps * 2,
                )

        ctx.engine.schedule_at(200.0, faster)
        ctx.engine.run_for(500.0)
        before = window_mean_bps(launched.trace, 140, 200)
        after = window_mean_bps(launched.trace, 440, 500)
        assert after > before * 1.2


class TestBackgroundTraffic:
    def test_survives_competing_fixed_load(self):
        """A non-adaptive background session appears and disappears;
        Falcon's throughput dips then fully recovers."""
        from repro.transfer.dataset import uniform_dataset
        from repro.transfer.session import TransferParams

        ctx = make_context(seed=32)
        tb = emulab(link_bps=200 * Mbps, per_process_bps=20 * Mbps)
        launched = launch_falcon(ctx, tb, kind="gd", hi=32)

        background = tb.new_session(
            uniform_dataset(100), params=TransferParams(concurrency=10), repeat=True
        )

        ctx.engine.schedule_at(150.0, lambda: ctx.network.add_session(background))

        def stop_background():
            background.finished_at = ctx.engine.now
            if background in ctx.network.sessions:
                ctx.network.remove_session(background)

        ctx.engine.schedule_at(300.0, stop_background)
        ctx.engine.run_for(460.0)

        alone = window_mean_bps(launched.trace, 90, 150)
        contended = window_mean_bps(launched.trace, 240, 300)
        recovered = window_mean_bps(launched.trace, 400, 460)
        assert contended < 0.85 * alone
        assert recovered > 0.85 * alone
