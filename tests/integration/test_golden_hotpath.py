"""Golden regression: the fluid hot path must be behaviour-preserving.

The topology-cache / vectorized-advance optimization (PR 1) promises
*identical* simulation outcomes — it may only change how fast a step
computes, never what it computes.  This test pins total good bytes,
files completed, and final concurrency for a fixed-seed competing
scenario that exercises every hot-path branch: shared-backbone
arbitration, loss, file completions and inter-file gaps, mid-run
concurrency *and* parallelism changes (topology-cache invalidation),
and a session finishing and leaving the executor.

The golden numbers were captured on the unoptimized simulator core
(after PR 1's engine/session/service bugfixes, before the tentpole
optimization).  If this test fails after touching the executor or
session step, the optimization changed simulation semantics.
"""

from __future__ import annotations

import pytest

from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic
from repro.network.link import Link
from repro.network.path import Path
from repro.network.queue import DropTailLossModel, NoLossModel
from repro.sim.engine import SimulationEngine
from repro.storage.parallel_fs import throttled_fs
from repro.testbeds.base import Testbed
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import Gbps, MB, Mbps, milliseconds


def run_scenario(batched: bool = True) -> dict:
    """Three site pairs crossing one lossy 1 Gbps backbone, 90 s.

    ``batched`` selects the executor's engine path; the batch parity
    test runs this same scenario both ways and requires bit-identical
    outcomes (see ``tests/integration/test_batch_parity.py``).
    """
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine, batched=batched)
    backbone = Link(
        "backbone", 1 * Gbps, delay=milliseconds(10), loss_model=DropTailLossModel()
    )
    lossless = NoLossModel()
    sessions = []
    for i, (conc, par) in enumerate([(4, 1), (8, 2), (16, 1)]):
        src = DataTransferNode(
            f"src-{i}",
            storage=throttled_fs(200 * Mbps, 5 * Gbps, f"disk-{i}"),
            nic=Nic(10 * Gbps, name=f"nic-s{i}"),
        )
        dst = DataTransferNode(
            f"dst-{i}",
            storage=throttled_fs(200 * Mbps, 5 * Gbps, f"disk-{i}d"),
            nic=Nic(10 * Gbps, name=f"nic-d{i}"),
        )
        path = Path(
            links=(
                Link(f"edge-s{i}", 10 * Gbps, delay=milliseconds(1), loss_model=lossless),
                backbone,
                Link(f"edge-d{i}", 10 * Gbps, delay=milliseconds(1), loss_model=lossless),
            ),
            name=f"path-{i}",
        )
        tb = Testbed(
            name=f"site-{i}",
            source=src,
            destination=dst,
            path=path,
            sample_interval=5.0,
            bottleneck="Network",
        )
        session = tb.new_session(
            uniform_dataset(90, 50 * MB),
            name=f"s{i}",
            params=TransferParams(concurrency=conc, parallelism=par),
        )
        network.add_session(session)
        sessions.append(session)

    # Mid-run parameter changes exercise topology-cache invalidation:
    # a concurrency step (worker resize) and a parallelism step
    # (per-link stream counts change without a resize).
    engine.schedule_at(20.0, lambda: sessions[0].set_concurrency(12))
    engine.schedule_at(
        35.0, lambda: sessions[1].set_params(sessions[1].params.with_(parallelism=3))
    )
    engine.run_for(90.0)
    return {
        "good_bytes": [s.total_good_bytes for s in sessions],
        "lost_bytes": [s.total_lost_bytes for s in sessions],
        "files": [s.files_completed for s in sessions],
        "concurrency": [s.params.concurrency for s in sessions],
        "finished": [s.finished_at for s in sessions],
    }


#: Captured on the pre-optimization simulator core (seed 865df62 plus
#: the PR 1 bugfixes), full float precision.
GOLDEN = {
    "good_bytes": [2482480248.040148, 4500000000.000005, 4024317058.538565],
    "lost_bytes": [18413634.699552905, 33377997.07409578, 28142544.143572427],
    "files": [44, 90, 80],
    "concurrency": [12, 8, 16],
    "finished": [None, 86.59999999999995, None],
}


class TestGoldenHotpath:
    def test_outcomes_match_unoptimized_core(self):
        result = run_scenario()
        assert result["files"] == GOLDEN["files"]
        assert result["concurrency"] == GOLDEN["concurrency"]
        for key in ("good_bytes", "lost_bytes"):
            assert result[key] == pytest.approx(GOLDEN[key], rel=1e-9), key
        for got, want in zip(result["finished"], GOLDEN["finished"]):
            if want is None:
                assert got is None
            else:
                assert got == pytest.approx(want, rel=1e-9)

    def test_run_twice_bit_identical(self):
        a = run_scenario()
        b = run_scenario()
        assert a == b  # exact, not approx: full determinism
