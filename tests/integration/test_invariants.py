"""Property-based invariants of the full substrate.

Hypothesis drives the executor and session through randomized
configurations and parameter changes, asserting the physical laws the
fluid model must never break: byte conservation, capacity respect, and
non-negativity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic
from repro.network.path import build_dumbbell
from repro.sim.engine import SimulationEngine
from repro.storage.parallel_fs import throttled_fs
from repro.testbeds.base import Testbed
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import MB, Mbps


def tiny_testbed(link_mbps: float, per_proc_mbps: float) -> Testbed:
    storage = throttled_fs(per_proc_mbps * Mbps, 10 * link_mbps * Mbps)
    src = DataTransferNode("s", storage=storage, nic=Nic(4 * link_mbps * Mbps))
    dst = DataTransferNode(
        "d",
        storage=throttled_fs(per_proc_mbps * Mbps, 10 * link_mbps * Mbps),
        nic=Nic(4 * link_mbps * Mbps),
    )
    return Testbed(
        name="tiny",
        source=src,
        destination=dst,
        path=build_dumbbell(link_mbps * Mbps, 0.02, edge_capacity=4 * link_mbps * Mbps),
        sample_interval=3.0,
        bottleneck="Network",
    )


class TestConservationProperties:
    @given(
        link=st.floats(min_value=50, max_value=1000),
        per_proc=st.floats(min_value=5, max_value=100),
        n=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=25, deadline=None)
    def test_throughput_never_exceeds_capacity(self, link, per_proc, n):
        tb = tiny_testbed(link, per_proc)
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        session = tb.new_session(
            uniform_dataset(50, 100 * MB), params=TransferParams(concurrency=n), repeat=True
        )
        net.add_session(session)
        engine.run_for(12.0)
        sample = session.monitor.take(concurrency=n)
        ceiling = min(link * 1e6, n * per_proc * 1e6)
        assert sample.throughput_bps <= ceiling * 1.02
        assert sample.throughput_bps >= 0.0

    @given(
        n=st.integers(min_value=1, max_value=16),
        files=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=20, deadline=None)
    def test_finite_dataset_fully_delivered(self, n, files):
        tb = tiny_testbed(500, 100)
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        total = files * 10 * MB
        session = tb.new_session(
            uniform_dataset(files, 10 * MB), params=TransferParams(concurrency=n)
        )
        net.add_session(session)
        engine.run_for(120.0)
        assert not session.active
        assert session.total_good_bytes == pytest.approx(total, rel=1e-3)
        assert session.files_completed == files

    @given(
        resizes=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=6)
    )
    @settings(max_examples=20, deadline=None)
    def test_bytes_conserved_across_resizes(self, resizes):
        """Arbitrary concurrency changes mid-flight never lose or
        duplicate bytes — files return to the queue with progress."""
        tb = tiny_testbed(500, 100)
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        files = 10
        session = tb.new_session(
            uniform_dataset(files, 20 * MB), params=TransferParams(concurrency=4)
        )
        net.add_session(session)
        for n in resizes:
            engine.run_for(3.0)
            if session.active:
                session.set_concurrency(n)
        engine.run_for(200.0)
        assert not session.active
        assert session.total_good_bytes == pytest.approx(files * 20 * MB, rel=1e-3)

    @given(n_sessions=st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_aggregate_capacity_respected_with_competition(self, n_sessions):
        tb = tiny_testbed(400, 50)
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        sessions = []
        for _ in range(n_sessions):
            s = tb.new_session(
                uniform_dataset(50, 100 * MB), params=TransferParams(concurrency=8), repeat=True
            )
            net.add_session(s)
            sessions.append(s)
        engine.run_for(15.0)
        total = sum(s.monitor.take(concurrency=8).throughput_bps for s in sessions)
        assert total <= 400e6 * 1.02
