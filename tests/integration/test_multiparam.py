"""Integration: multi-parameter optimization end to end."""

from __future__ import annotations


from repro.core.conjugate_gradient import ConjugateGradientOptimizer
from repro.core.utility import MultiParamUtility
from repro.experiments.common import launch_falcon, make_context, window_mean_bps
from repro.testbeds.presets import stampede2_comet
from repro.transfer.dataset import small_dataset, uniform_dataset
from repro.units import GiB


def run_mp(dataset, seed=40, duration=350.0):
    ctx = make_context(seed)
    optimizer = ConjugateGradientOptimizer(
        concurrency_bounds=(1, 40), parallelism_bounds=(1, 8), pipelining_bounds=(1, 64)
    )
    launched = launch_falcon(
        ctx,
        stampede2_comet(),
        dataset=dataset,
        optimizer=optimizer,
        utility=MultiParamUtility(),
        name="mp",
    )
    ctx.engine.run_for(duration)
    return ctx, launched


class TestMultiParam:
    def test_small_files_discover_pipelining(self):
        """On a tiny-file workload the tuner must raise pipelining well
        above 1 — that's where all the throughput hides."""
        _, launched = run_mp(small_dataset(total_bytes=4 * GiB, seed=1))
        assert launched.session.params.pipelining >= 8

    def test_large_files_keep_streams_lean(self):
        """Eq. 7 penalises total streams: with per-process I/O binding,
        parallelism must stay low."""
        _, launched = run_mp(uniform_dataset(300))
        assert launched.session.params.parallelism <= 2

    def test_reaches_reasonable_throughput(self):
        _, launched = run_mp(uniform_dataset(300), duration=400.0)
        tail = window_mean_bps(launched.trace, 280, 400)
        assert tail >= 0.6 * stampede2_comet().max_throughput()

    def test_parameters_stay_in_bounds(self):
        _, launched = run_mp(uniform_dataset(300))
        history = launched.controller.history
        for record in history:
            p = record.params
            assert 1 <= p.concurrency <= 40
            assert 1 <= p.parallelism <= 8
            assert 1 <= p.pipelining <= 64
