"""Open-workload experiment: replay determinism and overload contract.

Runs the CI-sized (quick-profile) parameterisation twice and checks the
two promises the experiment makes:

* same seed => byte-identical rendering, including the chaos leg (the
  fault plan, arrivals, sizes, and scheduler are all RngStreams-fed);
* under 2x overload the control plane degrades *gracefully*: no HIGH
  job is shed while best-effort traffic still completed, and every
  shed job carries a typed reason that the per-tenant accounting
  reconciles exactly.
"""

from __future__ import annotations

import pytest

from repro.experiments.open_workload import LEGS, SHARD_LEG, run
from repro.runner.suite import QUICK_PROFILE

QUICK = QUICK_PROFILE["open-workload"]


@pytest.fixture(scope="module")
def result():
    return run(seed=0, **QUICK)


class TestReplayDeterminism:
    def test_same_seed_is_byte_identical(self, result):
        again = run(seed=0, **QUICK)
        assert again.render() == result.render()

    def test_legs_cover_nominal_overload_chaos_and_sharded(self, result):
        expected = [leg for leg, _, _ in LEGS] + [SHARD_LEG[0]]
        assert [r.leg for r in result.runs] == expected
        assert result.runs[1].rho == 2.0
        assert result.runs[2].preset == "flaky-network"
        assert len(result.runs[3].shards) == SHARD_LEG[1]

    def test_chaos_leg_actually_flakes(self, result):
        # Identical output would mean the quick horizon drew an empty
        # fault plan and the "chaos replay" smoke tests nothing.
        nominal, _, flaky, _ = result.runs
        assert flaky.render() != nominal.render()


class TestOverloadContract:
    def test_no_high_job_shed_while_best_effort_ran(self, result):
        overload = result.runs[1]
        by_class = {t.tenant: t for t in overload.tenants}
        gold = by_class["gold"]
        scavenger = by_class["scavenger"]
        assert scavenger.completed > 0  # best-effort still got service
        assert gold.shed_total == 0  # ...so HIGH never paid for overload
        assert gold.completed == gold.submitted

    def test_every_shed_has_a_typed_reason(self, result):
        for leg in result.runs:
            for t in leg.tenants:
                # shed_total sums the four typed reasons; an untyped
                # rejection would leave submitted unaccounted for.
                assert t.submitted == t.completed + t.unfinished + t.shed_total
            assert leg.jobs_shed == sum(t.shed_total for t in leg.tenants)

    def test_overload_sheds_only_best_effort(self, result):
        overload = result.runs[1]
        for t in overload.tenants:
            if t.priority != "best-effort":
                assert t.shed_degraded == 0

    def test_fairness_and_slowdowns_reported(self, result):
        for leg in result.runs:
            assert 0.0 < leg.jain_fairness <= 1.0
            for t in leg.tenants:
                if t.completed:
                    assert t.p50_slowdown >= 1.0
                    assert t.p99_slowdown >= t.p50_slowdown


class TestShardedLeg:
    def test_only_sharded_leg_reports_shards(self, result):
        for leg in result.runs[:-1]:
            assert leg.shards == ()
            assert leg.skew == 0.0

    def test_every_submission_lands_on_exactly_one_shard(self, result):
        sharded = result.runs[-1]
        # Each submit registers the job on one shard (even shed jobs,
        # for the audit trail), so routed counts partition submissions.
        assert sum(s.routed for s in sharded.shards) == sharded.jobs_submitted

    def test_all_shards_utilized_and_skew_bounded(self, result):
        sharded = result.runs[-1]
        assert all(s.utilization > 0.0 for s in sharded.shards)
        assert all(s.completed > 0 for s in sharded.shards)
        # Least-loaded placement should keep the fleet within a modest
        # spread; 50% is a loose ceiling (observed ~8% at quick scale).
        assert 0.0 <= sharded.skew < 0.5
