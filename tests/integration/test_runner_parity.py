"""The harness's core guarantee: execution mode never changes results.

Serial in-process execution, process fan-out, and cache replay must all
render byte-identical experiment output — the pool only changes *when*
work happens and the cache only changes *whether* it happens, never
*what* the result is.  fig. 7 is the probe: three independent seeded
runs, cheap at a reduced horizon, rendered to a table that would expose
any float-level divergence.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig07_convergence as fig07
from repro.runner import ResultCache, use_runner

DURATION = 60.0


def render() -> str:
    return fig07.run(seed=0, duration=DURATION).render()


@pytest.fixture(scope="module")
def serial_output() -> str:
    return render()


def test_parallel_output_is_byte_identical(serial_output):
    with use_runner(jobs=2):
        assert render() == serial_output


def test_cache_replay_is_byte_identical(tmp_path_factory, serial_output):
    cache = ResultCache(tmp_path_factory.mktemp("cache"))
    with use_runner(cache=cache):
        cold = render()
        warm = render()
    assert cold == serial_output
    assert warm == serial_output
    assert cache.stats.writes == 3  # one entry per algorithm
    assert cache.stats.hits == 3  # the replay executed nothing


def test_parallel_cold_cache_serves_serial_replay(tmp_path_factory, serial_output):
    cache = ResultCache(tmp_path_factory.mktemp("cache"))
    with use_runner(jobs=3, cache=cache):
        cold = render()
    with use_runner(cache=cache):
        warm = render()
    assert cold == serial_output
    assert warm == serial_output
    assert cache.stats.hits == 3
