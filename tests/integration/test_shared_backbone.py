"""Integration: two different site pairs sharing one backbone link.

The executor must arbitrate sessions whose endpoints differ but whose
paths cross at a common link — the general shared-WAN case (distinct
DTNs, distinct edge links, one 1 Gbps backbone).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fairness import jain_index
from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic
from repro.network.link import Link
from repro.network.path import Path
from repro.network.queue import DropTailLossModel, NoLossModel
from repro.sim.engine import SimulationEngine
from repro.storage.parallel_fs import throttled_fs
from repro.testbeds.base import Testbed
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import Gbps, Mbps, milliseconds


def build_shared_backbone() -> tuple[Testbed, Testbed, Link]:
    """Two site pairs (A->B, C->D) crossing one 1 Gbps backbone."""
    backbone = Link("backbone", 1 * Gbps, delay=milliseconds(10), loss_model=DropTailLossModel())

    def site_pair(tag: str) -> Testbed:
        storage = throttled_fs(50 * Mbps, 4 * Gbps, f"disk-{tag}")
        src = DataTransferNode(f"{tag}-src", storage=storage, nic=Nic(10 * Gbps))
        dst = DataTransferNode(
            f"{tag}-dst", storage=throttled_fs(50 * Mbps, 4 * Gbps, f"disk-{tag}d"),
            nic=Nic(10 * Gbps),
        )
        path = Path(
            links=(
                Link(f"{tag}-edge-src", 10 * Gbps, delay=milliseconds(1), loss_model=NoLossModel()),
                backbone,
                Link(f"{tag}-edge-dst", 10 * Gbps, delay=milliseconds(1), loss_model=NoLossModel()),
            ),
            name=f"{tag}-path",
        )
        return Testbed(
            name=f"site-{tag}",
            source=src,
            destination=dst,
            path=path,
            sample_interval=5.0,
            bottleneck="Network",
        )

    return site_pair("A"), site_pair("C"), backbone


class TestSharedBackbone:
    def test_distinct_pairs_share_common_link(self):
        tb_a, tb_c, backbone = build_shared_backbone()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        s_a = tb_a.new_session(uniform_dataset(100), params=TransferParams(concurrency=20), repeat=True)
        s_c = tb_c.new_session(uniform_dataset(100), params=TransferParams(concurrency=20), repeat=True)
        net.add_session(s_a)
        net.add_session(s_c)
        engine.run_for(40.0)
        rates = np.array(
            [
                s_a.monitor.take(concurrency=20).throughput_bps,
                s_c.monitor.take(concurrency=20).throughput_bps,
            ]
        )
        # Equal flow counts -> equal halves of the backbone.
        assert jain_index(rates) > 0.99
        assert rates.sum() == pytest.approx(1e9, rel=0.06)

    def test_share_follows_flow_count(self):
        """At the saturated backbone, each pair's share is proportional
        to its flow count (4 vs 20 of 24 flows)."""
        tb_a, tb_c, _ = build_shared_backbone()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        s_a = tb_a.new_session(uniform_dataset(100), params=TransferParams(concurrency=4), repeat=True)
        s_c = tb_c.new_session(uniform_dataset(100), params=TransferParams(concurrency=20), repeat=True)
        net.add_session(s_a)
        net.add_session(s_c)
        engine.run_for(40.0)
        r_a = s_a.monitor.take(concurrency=4).throughput_bps
        r_c = s_c.monitor.take(concurrency=20).throughput_bps
        assert r_a == pytest.approx(1e9 * 4 / 24, rel=0.07)
        assert r_c == pytest.approx(1e9 * 20 / 24, rel=0.07)

    def test_small_demand_pair_fully_served(self):
        """A pair whose own throttle keeps it below the fair level is
        fully served; the other pair soaks up the slack (max-min)."""
        tb_a, tb_c, _ = build_shared_backbone()
        # Throttle A's processes to 20 Mbps: 4 x 20M < the ~46M fair level.
        tb_a.source.storage = throttled_fs(20 * Mbps, 4 * Gbps, "disk-A")
        tb_a.destination.storage = throttled_fs(20 * Mbps, 4 * Gbps, "disk-Ad")
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        s_a = tb_a.new_session(uniform_dataset(100), params=TransferParams(concurrency=4), repeat=True)
        s_c = tb_c.new_session(uniform_dataset(100), params=TransferParams(concurrency=20), repeat=True)
        net.add_session(s_a)
        net.add_session(s_c)
        engine.run_for(40.0)
        r_a = s_a.monitor.take(concurrency=4).throughput_bps
        r_c = s_c.monitor.take(concurrency=20).throughput_bps
        assert r_a == pytest.approx(4 * 20e6, rel=0.05)
        assert r_c >= 850e6

    def test_falcon_agents_split_backbone(self):
        from repro.core.agent import FalconAgent
        from repro.core.controller import attach_agent
        from repro.core.gradient_descent import GradientDescent

        tb_a, tb_c, _ = build_shared_backbone()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        agents = []
        for i, tb in enumerate((tb_a, tb_c)):
            s = tb.new_session(uniform_dataset(100), repeat=True)
            net.add_session(s)
            agent = FalconAgent(
                session=s, optimizer=GradientDescent(lo=1, hi=40), rng=np.random.default_rng(i)
            )
            attach_agent(engine, agent, interval=5.0 * (1 + 0.05 * i))
            agents.append(agent)
        engine.run_for(700.0)
        # Average each agent's measured throughput over the trailing
        # 300 s: the pairwise dynamics oscillate, so fairness is a
        # statement about time-averaged shares.
        rates = []
        for agent in agents:
            times = agent.times()
            tputs = agent.throughputs()
            rates.append(float(np.mean(tputs[times >= 400.0])))
        rates = np.array(rates)
        assert jain_index(rates) > 0.75
        assert rates.sum() >= 0.7e9
