"""Integration: full Falcon runs on every Table 1 testbed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import launch_falcon, make_context
from repro.testbeds.presets import campus_cluster, emulab_fig4, hpclab, xsede


@pytest.mark.parametrize("factory", [emulab_fig4, xsede, hpclab, campus_cluster])
@pytest.mark.parametrize("kind", ["gd", "bo"])
def test_falcon_reaches_near_optimal(factory, kind):
    """Fig 9/10 in miniature: >=75% utilisation on every testbed.

    (The full-horizon benches assert the tighter per-figure numbers;
    240 s with BO's exploration needs a little slack on the lossy
    Emulab path.)"""
    ctx = make_context(seed=7)
    tb = factory()
    launched = launch_falcon(ctx, tb, kind=kind)
    ctx.engine.run_for(240.0)
    agent = launched.controller
    tail = agent.throughputs()[-12:]
    assert tail.mean() >= 0.75 * tb.max_throughput()


@pytest.mark.parametrize("factory", [emulab_fig4, hpclab])
def test_falcon_concurrency_tracks_optimum(factory):
    ctx = make_context(seed=8)
    tb = factory()
    launched = launch_falcon(ctx, tb, kind="gd")
    ctx.engine.run_for(240.0)
    tail = launched.controller.concurrencies()[-12:]
    assert abs(tail.mean() - tb.optimal_concurrency()) <= 3


def test_falcon_keeps_loss_low_on_lossy_path():
    """The B=10 loss regret keeps Emulab loss ~1% at high utilisation."""
    ctx = make_context(seed=9)
    launched = launch_falcon(ctx, emulab_fig4(), kind="gd")
    ctx.engine.run_for(240.0)
    records = launched.controller.history[-12:]
    mean_loss = np.mean([r.loss_rate for r in records])
    mean_tput = np.mean([r.throughput_bps for r in records])
    assert mean_loss < 0.03
    assert mean_tput >= 0.8 * 100e6


def test_finite_transfer_completes():
    """An actual (non-repeating) dataset is fully delivered and the
    session retires itself from the executor."""
    from repro.transfer.dataset import uniform_dataset
    from repro.units import MB

    ctx = make_context(seed=10)
    tb = emulab_fig4()
    dataset = uniform_dataset(20, 10 * MB)  # 200 MB
    launched = launch_falcon(ctx, tb, kind="gd", dataset=dataset, repeat=False)
    ctx.engine.run_for(120.0)
    assert not launched.session.active
    assert launched.session.total_good_bytes == pytest.approx(200 * MB, rel=1e-3)
    assert launched.session not in ctx.network.sessions
