"""Same seed, same scenario ⇒ byte-identical JSONL traces.

This is the acceptance bar for the observability layer: a trace is a
*record* of a deterministic simulation, so re-running the identical
experiment must reproduce the file down to the last byte — float
formatting, field order, event order, everything.
"""

from __future__ import annotations

from repro.experiments.common import launch_falcon, make_context
from repro.obs import JsonlExporter, use_tracing
from repro.testbeds.presets import xsede


def write_trace(path, seed):
    with JsonlExporter(path) as sink, use_tracing(sink):
        ctx = make_context(seed)
        launch_falcon(ctx, xsede(), kind="gd")
        ctx.engine.run_for(30.0)


def test_same_seed_traces_are_byte_identical(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_trace(a, seed=11)
    write_trace(b, seed=11)
    raw = a.read_bytes()
    assert raw == b.read_bytes()
    assert len(raw) > 0 and raw.endswith(b"\n")


def test_different_seeds_diverge(tmp_path):
    # Sanity check on the check itself: the comparison is not trivially
    # true for any two runs.
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_trace(a, seed=11)
    write_trace(b, seed=12)
    assert a.read_bytes() != b.read_bytes()
