"""Link model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.link import Link
from repro.network.queue import NoLossModel
from repro.units import Gbps


class TestLinkValidation:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            Link("bad", capacity=0.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Link("bad", capacity=1.0, delay=-0.1)


class TestLinkAllocation:
    def test_allocate_is_max_min(self):
        link = Link("l", capacity=10 * Gbps)
        alloc = link.allocate(np.array([4e9, 4e9, 4e9]))
        assert np.allclose(alloc, 10e9 / 3)

    def test_allocate_under_capacity(self):
        link = Link("l", capacity=10 * Gbps)
        alloc = link.allocate(np.array([1e9, 2e9]))
        assert np.allclose(alloc, [1e9, 2e9])


class TestLinkLoss:
    def test_custom_loss_model(self):
        link = Link("l", capacity=1e9, loss_model=NoLossModel())
        assert link.loss_rate(1e9, 50, 0.03) == 0.0

    def test_default_drop_tail(self):
        link = Link("l", capacity=1e8)
        assert link.loss_rate(1e8, 32, 0.03) > 0.01


class TestUtilization:
    def test_utilization(self):
        link = Link("l", capacity=10e9)
        assert link.utilization(5e9) == pytest.approx(0.5)
