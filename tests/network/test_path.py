"""Path and topology tests."""

from __future__ import annotations

import pytest

from repro.network.link import Link
from repro.network.path import Path, Topology, build_dumbbell, shortest_path
from repro.units import Gbps, Mbps, milliseconds


def make_links():
    return (
        Link("a", capacity=10 * Gbps, delay=0.001),
        Link("b", capacity=1 * Gbps, delay=0.010),
        Link("c", capacity=5 * Gbps, delay=0.004),
    )


class TestPath:
    def test_rtt_is_twice_delay_sum(self):
        path = Path(links=make_links())
        assert path.rtt == pytest.approx(2 * (0.001 + 0.010 + 0.004))

    def test_capacity_is_min(self):
        path = Path(links=make_links())
        assert path.capacity == 1 * Gbps

    def test_bottleneck_link(self):
        path = Path(links=make_links())
        assert path.bottleneck.name == "b"

    def test_len_and_iter(self):
        path = Path(links=make_links())
        assert len(path) == 3
        assert [l.name for l in path] == ["a", "b", "c"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Path(links=())

    def test_duplicate_link_rejected(self):
        link = Link("dup", capacity=1e9)
        with pytest.raises(ValueError):
            Path(links=(link, link))


class TestDumbbell:
    def test_structure(self):
        path = build_dumbbell(100 * Mbps, milliseconds(30))
        assert len(path) == 3
        assert path.capacity == 100 * Mbps
        assert path.rtt == pytest.approx(0.03)

    def test_edge_capacity_default(self):
        path = build_dumbbell(100 * Mbps, 0.03)
        edges = [l for l in path if "edge" in l.name]
        assert all(l.capacity == 10 * 100 * Mbps for l in edges)

    def test_edge_capacity_override(self):
        path = build_dumbbell(100 * Mbps, 0.03, edge_capacity=1 * Gbps)
        edges = [l for l in path if "edge" in l.name]
        assert all(l.capacity == 1 * Gbps for l in edges)

    def test_only_bottleneck_lossy(self):
        path = build_dumbbell(100 * Mbps, 0.03)
        bottleneck = path.bottleneck
        for link in path:
            loss = link.loss_rate(link.capacity, 32, 0.03)
            if link is bottleneck:
                assert loss > 0.0
            else:
                assert loss == 0.0


class TestTopology:
    def test_shortest_path_extraction(self):
        topo = Topology()
        for host in ("src", "router", "dst"):
            topo.add_host(host)
        topo.connect("src", "router", Link("l1", 1e9, 0.001))
        topo.connect("router", "dst", Link("l2", 1e8, 0.002))
        path = topo.path("src", "dst")
        assert [l.name for l in path] == ["l1", "l2"]
        assert path.capacity == 1e8

    def test_shortest_path_prefers_fewer_hops(self):
        topo = Topology()
        for host in ("a", "b", "c"):
            topo.add_host(host)
        topo.connect("a", "b", Link("ab", 1e9))
        topo.connect("b", "c", Link("bc", 1e9))
        topo.connect("a", "c", Link("ac", 1e8))
        path = topo.path("a", "c")
        assert [l.name for l in path] == ["ac"]

    def test_shortest_path_function(self):
        topo = Topology()
        topo.add_host("x")
        topo.add_host("y")
        topo.connect("x", "y", Link("xy", 1e9))
        path = shortest_path(topo.graph, "x", "y")
        assert path.name == "x->y"
