"""Loss-model tests — anchored on the paper's Fig. 4 curve."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.queue import DropTailLossModel, NoLossModel
from repro.units import Mbps


class TestNoLossModel:
    def test_always_zero(self):
        model = NoLossModel()
        assert model.loss_rate(1e9, 1e8, 100, 0.03) == 0.0


class TestDropTailBelowSaturation:
    def test_residual_only(self):
        model = DropTailLossModel()
        loss = model.loss_rate(offered_bps=50 * Mbps, capacity_bps=100 * Mbps, n_flows=5, rtt=0.03)
        assert loss == pytest.approx(model.residual_loss)

    def test_zero_flows(self):
        model = DropTailLossModel()
        assert model.loss_rate(0.0, 100 * Mbps, 0, 0.03) == 0.0

    def test_zero_capacity(self):
        model = DropTailLossModel()
        assert model.loss_rate(1.0, 0.0, 1, 0.03) == 0.0


class TestDropTailSaturated:
    """The Fig. 4 anchor: 100 Mbps link, 30 ms RTT."""

    def setup_method(self):
        self.model = DropTailLossModel()
        self.capacity = 100 * Mbps
        self.rtt = 0.03

    def loss(self, n):
        return self.model.loss_rate(self.capacity, self.capacity, n, self.rtt)

    def test_loss_below_2pct_at_saturation_point(self):
        assert self.loss(10) < 0.02

    def test_loss_about_10pct_at_32_flows(self):
        assert 0.06 <= self.loss(32) <= 0.13

    def test_loss_monotone_in_flows(self):
        losses = [self.loss(n) for n in (10, 16, 24, 32, 48)]
        assert losses == sorted(losses)

    def test_loss_capped(self):
        assert self.loss(10_000) <= self.model.max_loss

    def test_rtt_floor_prevents_lan_blowup(self):
        lan = self.model.loss_rate(self.capacity, self.capacity, 10, 1e-4)
        floor = self.model.loss_rate(self.capacity, self.capacity, 10, 5e-3)
        assert lan == pytest.approx(floor)

    def test_larger_rtt_means_less_loss(self):
        # Larger per-flow window in packets -> fewer probing losses.
        short = self.model.loss_rate(self.capacity, self.capacity, 20, 0.01)
        long = self.model.loss_rate(self.capacity, self.capacity, 20, 0.08)
        assert long < short


class TestDropTailProperties:
    @given(
        n=st.integers(min_value=1, max_value=500),
        rtt=st.floats(min_value=1e-5, max_value=0.5),
        util=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=120)
    def test_loss_in_unit_range(self, n, rtt, util):
        model = DropTailLossModel()
        loss = model.loss_rate(util * 1e8, 1e8, n, rtt)
        assert 0.0 <= loss <= model.max_loss

    @given(n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=60)
    def test_saturated_at_least_residual(self, n):
        model = DropTailLossModel()
        assert model.loss_rate(1e8, 1e8, n, 0.03) >= model.residual_loss
