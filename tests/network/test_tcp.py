"""Fluid TCP model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.tcp import BBR, CUBIC, TcpModel, stream_window_cap
from repro.units import MiB


class TestWindowCap:
    def test_cap_formula(self):
        # 16 MiB window over 60 ms -> ~2.24 Gbps.
        cap = stream_window_cap(16 * MiB, 0.06)
        assert cap == pytest.approx(16 * MiB * 8 / 0.06)
        assert 2.0e9 < cap < 2.5e9

    def test_zero_rtt_is_unbounded(self):
        assert stream_window_cap(16 * MiB, 0.0) == float("inf")

    def test_smaller_window_smaller_cap(self):
        assert stream_window_cap(8 * MiB, 0.06) < stream_window_cap(16 * MiB, 0.06)


class TestRampDynamics:
    def test_instant_decrease(self):
        model = TcpModel()
        rates = np.array([10e9])
        out = model.advance_rates(rates, np.array([1e9]), rtt=0.03, dt=0.1)
        assert out[0] == pytest.approx(1e9)

    def test_gradual_increase(self):
        model = TcpModel()
        out = model.advance_rates(np.array([0.0]), np.array([1e9]), rtt=0.03, dt=0.1)
        assert 0.0 < out[0] < 1e9

    def test_converges_to_target(self):
        model = TcpModel()
        rates = np.array([0.0])
        target = np.array([1e9])
        for _ in range(200):
            rates = model.advance_rates(rates, target, rtt=0.03, dt=0.1)
        assert rates[0] == pytest.approx(1e9, rel=1e-3)

    def test_ramp_tau_floor(self):
        model = TcpModel(min_ramp_time=0.25, ramp_rtts=20)
        assert model.ramp_tau(1e-4) == pytest.approx(0.25)
        assert model.ramp_tau(0.06) == pytest.approx(1.2)

    def test_longer_rtt_ramps_slower(self):
        model = TcpModel()
        fast = model.advance_rates(np.array([0.0]), np.array([1e9]), rtt=0.01, dt=0.1)
        slow = model.advance_rates(np.array([0.0]), np.array([1e9]), rtt=0.1, dt=0.1)
        assert slow[0] < fast[0]

    def test_vectorised_mixed_directions(self):
        model = TcpModel()
        rates = np.array([2e9, 0.5e9])
        target = np.array([1e9, 1e9])
        out = model.advance_rates(rates, target, rtt=0.03, dt=0.1)
        assert out[0] == pytest.approx(1e9)  # down: instant
        assert 0.5e9 < out[1] < 1e9  # up: gradual


class TestPresets:
    def test_loss_based_variants_share_aggressiveness(self):
        assert CUBIC.aggressiveness == 1.0

    def test_bbr_is_more_aggressive(self):
        assert BBR.aggressiveness > 1.0

    def test_stream_cap_uses_buffer(self):
        model = TcpModel(buffer_bytes=32 * MiB)
        assert model.stream_cap(0.06) == pytest.approx(32 * MiB * 8 / 0.06)
