"""Shared fixtures for the observability test suite."""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def repo_root() -> Path:
    """The repository checkout containing this test file."""
    return Path(__file__).resolve().parents[2]
