"""Event registry integrity: typed records, metadata, round-trip."""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    EngineStep,
    SessionComplete,
    TraceEvent,
    event,
    field_specs,
    from_dict,
    iter_event_types,
)


class TestRegistry:
    def test_every_type_is_frozen_and_labelled(self):
        for name, cls in EVENT_TYPES.items():
            assert cls.type == name
            assert cls.emitted_by, name
            assert cls.__doc__, name
            assert issubclass(cls, TraceEvent)
            # All non-time fields carry defaults, so this constructs.
            instance = cls(time=0.0)
            with pytest.raises(dataclasses.FrozenInstanceError):
                instance.time = 1.0

    def test_instances_are_immutable(self):
        ev = EngineStep(time=1.0, dt=0.1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            ev.dt = 0.2

    def test_iter_event_types_is_sorted(self):
        names = [cls.type for cls in iter_event_types()]
        assert names == sorted(EVENT_TYPES)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):

            @event("engine.step", emitted_by="nowhere")
            class Impostor(TraceEvent):
                """Duplicate wire name."""

    def test_every_field_has_unit_metadata(self):
        # The schema table needs a unit and description for every field.
        for cls in EVENT_TYPES.values():
            for name, _type, unit, doc in field_specs(cls):
                assert unit, f"{cls.type}.{name} has no unit metadata"
                assert doc, f"{cls.type}.{name} has no field description"

    def test_time_is_first_field_everywhere(self):
        for cls in EVENT_TYPES.values():
            assert dataclasses.fields(cls)[0].name == "time"


class TestRoundTrip:
    def test_to_dict_puts_type_first(self):
        d = EngineStep(time=2.5, dt=0.1).to_dict()
        assert list(d)[0] == "type"
        assert d == {"type": "engine.step", "time": 2.5, "dt": 0.1}

    def test_from_dict_rebuilds_the_exact_record(self):
        ev = SessionComplete(
            time=9.0, session="a", good_bytes=1e9, lost_bytes=2e6, files=100
        )
        assert from_dict(ev.to_dict()) == ev

    def test_from_dict_rejects_unknown_types(self):
        with pytest.raises(ValueError, match="unknown event type"):
            from_dict({"type": "no.such.event", "time": 0.0})
