"""Exporter behaviour: JSONL round-trip, canonical encoding."""

from __future__ import annotations

import io

from repro.obs.events import EngineStep, FaultInjected, MonitorSampleTaken
from repro.obs.exporters import InMemoryExporter, JsonlExporter, encode_event, read_events

EVENTS = [
    EngineStep(time=0.1, dt=0.1),
    MonitorSampleTaken(
        time=1.0,
        session="falcon-gd",
        duration_s=1.0,
        throughput_bps=9.5e9,
        loss_rate=0.002,
        concurrency=16,
        parallelism=2,
        pipelining=4,
        valid=True,
    ),
    FaultInjected(time=2.0, kind="outage", target="backbone", detail="down 5s"),
]


class TestJsonl:
    def test_file_round_trip_preserves_every_event(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with JsonlExporter(path) as sink:
            for ev in EVENTS:
                sink.export(ev)
        assert read_events(path) == EVENTS

    def test_borrowed_stream_round_trip(self):
        buf = io.StringIO()
        sink = JsonlExporter(buf)
        for ev in EVENTS:
            sink.export(ev)
        sink.close()  # borrowed stream: flushed, not closed
        assert not buf.closed
        assert read_events(buf.getvalue().splitlines()) == EVENTS

    def test_encoding_is_canonical(self):
        line = encode_event(EngineStep(time=0.30000000000000004, dt=0.1))
        # type first, field order, compact separators, shortest float repr.
        assert line == '{"type":"engine.step","time":0.30000000000000004,"dt":0.1}'

    def test_read_events_skips_blank_lines(self):
        lines = [encode_event(EVENTS[0]), "", "   ", encode_event(EVENTS[2])]
        assert read_events(lines) == [EVENTS[0], EVENTS[2]]

    def test_owned_file_is_closed_on_exit(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlExporter(path) as sink:
            sink.export(EVENTS[0])
            stream = sink._stream
        assert stream.closed


class TestInMemory:
    def test_collects_in_emission_order(self):
        mem = InMemoryExporter()
        for ev in EVENTS:
            mem.export(ev)
        assert mem.events == EVENTS
