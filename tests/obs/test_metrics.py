"""Metrics registry: instruments, auto-registration, snapshots."""

from __future__ import annotations

from repro.obs.metrics import Metrics


class TestInstruments:
    def test_counters_accumulate(self):
        m = Metrics()
        m.inc("steps")
        m.inc("steps", 2)
        assert m.counter("steps").value == 3.0

    def test_gauges_keep_the_latest_level(self):
        m = Metrics()
        m.set("active", 3)
        m.set("active", 1)
        assert m.gauge("active").value == 1.0

    def test_histograms_track_summary_stats(self):
        m = Metrics()
        for v in (2.0, -1.0, 5.0):
            m.observe("u", v)
        h = m.histogram("u")
        assert (h.count, h.total, h.min, h.max) == (3, 6.0, -1.0, 5.0)
        assert h.mean == 2.0

    def test_instruments_are_created_on_first_use(self):
        m = Metrics()
        assert m.counter("fresh").value == 0.0
        assert m.counter("fresh") is m.counter("fresh")


class TestSnapshot:
    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        m = Metrics()
        m.inc("z.second")
        m.inc("a.first")
        m.set("g", 7)
        m.observe("h", 1.5)
        snap = m.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.second"]
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"] == {
            "count": 1,
            "total": 1.5,
            "min": 1.5,
            "max": 1.5,
            "mean": 1.5,
        }
        json.dumps(snap)  # must be plain JSON types throughout

    def test_empty_histogram_snapshot_has_finite_bounds(self):
        m = Metrics()
        m.histogram("empty")
        snap = m.snapshot()["histograms"]["empty"]
        assert snap == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}

    def test_identical_operations_give_identical_snapshots(self):
        def build():
            m = Metrics()
            m.inc("a")
            m.observe("b", 0.25)
            m.set("c", 9)
            return m.snapshot()

        assert build() == build()
