"""Tracing must be a pure observer: on vs. off leaves results bit-identical.

The property the <3%-overhead budget is meaningless without: enabling
the tracer may never change *what* the simulation computes — only
record it.  Checked across seeds, testbeds, optimizers, and a faulted
service run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import launch_falcon, make_context
from repro.faults import ChaosRng, FaultInjector, chaos_plan
from repro.obs import InMemoryExporter, use_tracing
from repro.testbeds.presets import emulab_fig4, hpclab, xsede


def run_plain(testbed_factory, seed, kind, duration):
    ctx = make_context(seed)
    launched = launch_falcon(ctx, testbed_factory(), kind=kind)
    ctx.engine.run_for(duration)
    agent = launched.controller
    session = launched.session
    return (
        agent.concurrencies(),
        agent.throughputs(),
        agent.utilities(),
        session.total_good_bytes,
        session.total_lost_bytes,
    )


@pytest.mark.parametrize("seed", [0, 7, 23])
@pytest.mark.parametrize(
    "testbed_factory,kind",
    [(hpclab, "gd"), (xsede, "bo"), (emulab_fig4, "hc")],
)
def test_tracing_on_off_bit_identical(testbed_factory, seed, kind):
    duration = 60.0
    off = run_plain(testbed_factory, seed, kind, duration)
    with use_tracing(InMemoryExporter()) as tracer:
        on = run_plain(testbed_factory, seed, kind, duration)
    assert len(tracer.exporters[0].events) > 0  # tracing actually ran
    for a, b in zip(off, on):
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b)
        else:
            assert a == b


def run_faulted(seed):
    ctx = make_context(seed)
    launched = launch_falcon(ctx, hpclab(), kind="gd")
    plan = chaos_plan("hostile", horizon=90.0, rng=ChaosRng(ctx.streams))
    FaultInjector(ctx.engine, ctx.network, plan, streams=ctx.streams).arm()
    ctx.engine.run_for(90.0)
    session = launched.session
    return (
        launched.controller.throughputs(),
        session.total_good_bytes,
        session.worker_crashes,
        session.stalled_seconds,
    )


def test_faulted_run_is_bit_identical_under_tracing():
    off = run_faulted(seed=5)
    with use_tracing(InMemoryExporter()) as tracer:
        on = run_faulted(seed=5)
    events = tracer.exporters[0].events
    assert any(ev.type.startswith("fault.") for ev in events)
    assert np.array_equal(off[0], on[0])
    assert off[1:] == on[1:]
