"""Schema generator: docs/events.md must mirror the registry."""

from __future__ import annotations

from repro.obs.events import EVENT_TYPES
from repro.obs.schema import main, render_schema


class TestRender:
    def test_every_event_type_is_documented(self):
        rendered = render_schema()
        for name, cls in EVENT_TYPES.items():
            assert f"## `{name}`" in rendered
            assert cls.emitted_by in rendered

    def test_render_is_deterministic(self):
        assert render_schema() == render_schema()


class TestCli:
    def test_repo_doc_is_in_sync(self, repo_root, capsys):
        # The committed docs/events.md must match the live registry —
        # the same invariant CI enforces.
        path = repo_root / "docs" / "events.md"
        assert path.is_file(), "docs/events.md missing; run schema --write"
        assert main(["--check", "--path", str(path)]) == 0

    def test_write_then_check_round_trips(self, tmp_path, capsys):
        path = tmp_path / "events.md"
        assert main(["--write", "--path", str(path)]) == 0
        assert main(["--check", "--path", str(path)]) == 0

    def test_check_detects_drift(self, tmp_path, capsys):
        path = tmp_path / "events.md"
        main(["--write", "--path", str(path)])
        path.write_text(path.read_text() + "\nstray edit\n")
        assert main(["--check", "--path", str(path)]) == 1

    def test_check_fails_when_file_missing(self, tmp_path, capsys):
        assert main(["--check", "--path", str(tmp_path / "absent.md")]) == 1
