"""Timeline reconstruction from event streams."""

from __future__ import annotations

from repro.analysis.timeline import build_timelines, load_timelines, summarize
from repro.experiments.common import launch_falcon, make_context
from repro.obs import InMemoryExporter, JsonlExporter, use_tracing
from repro.obs.events import (
    EngineStep,
    MonitorSampleTaken,
    OptimizerDecision,
    SessionComplete,
    SessionStart,
    UtilityEvaluated,
)
from repro.testbeds.presets import hpclab

SYNTHETIC = [
    SessionStart(time=0.0, session="s1", concurrency=2, parallelism=1),
    EngineStep(time=0.1, dt=0.1),
    MonitorSampleTaken(time=1.0, session="s1", duration_s=1.0, throughput_bps=4e9, loss_rate=0.01),
    UtilityEvaluated(time=1.0, session="s1", utility=3.5, throughput_bps=4e9, loss_rate=0.01),
    OptimizerDecision(time=1.0, session="s1", optimizer="GradientDescent", concurrency=4, utility=3.5),
    SessionComplete(time=2.5, session="s1", good_bytes=1e9, lost_bytes=1e7, files=10),
]


class TestBuild:
    def test_folds_session_series(self):
        tls = build_timelines(SYNTHETIC)
        assert list(tls) == ["s1"]
        tl = tls["s1"]
        assert tl.started_at == 0.0
        assert tl.finished_at == 2.5
        assert tl.duration == 2.5
        assert tl.sample_times == [1.0]
        assert tl.throughput_bps == [4e9]
        assert tl.loss_rate == [0.01]
        assert tl.utilities == [3.5]
        assert tl.concurrency == [4]

    def test_sessionless_events_are_ignored(self):
        tls = build_timelines([EngineStep(time=0.1, dt=0.1)])
        assert tls == {}

    def test_summarize_counts_and_spans(self):
        rows = summarize(SYNTHETIC)
        by_type = {r.type: r for r in rows}
        assert [r.type for r in rows] == sorted(by_type)
        assert by_type["engine.step"].count == 1
        assert by_type["session.start"].first == 0.0
        assert by_type["session.complete"].last == 2.5


class TestEndToEnd:
    def test_real_trace_loads_into_timelines(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with JsonlExporter(path) as sink, use_tracing(sink, InMemoryExporter()):
            ctx = make_context(seed=3)
            launch_falcon(ctx, hpclab(), kind="gd")
            ctx.engine.run_for(30.0)
        tls = load_timelines(path)
        (tl,) = tls.values()
        assert tl.started_at == 0.0
        assert len(tl.sample_times) == len(tl.throughput_bps) > 0
        assert len(tl.decision_times) == len(tl.concurrency) > 0
        assert all(t <= 30.0 for t in tl.sample_times)
