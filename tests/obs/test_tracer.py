"""Ambient tracer behaviour: enable/disable, nesting, timestamps."""

from __future__ import annotations

from repro.obs import InMemoryExporter, Metrics, Tracer, current_tracer, use_tracing
from repro.obs.events import EngineStep, SessionComplete


class TestAmbient:
    def test_tracing_is_off_by_default(self):
        assert current_tracer() is None

    def test_use_tracing_establishes_and_restores(self):
        with use_tracing() as tracer:
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_nested_blocks_stack(self):
        with use_tracing() as outer:
            with use_tracing() as inner:
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_restores_on_exception(self):
        try:
            with use_tracing():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_tracer() is None


class TestEmit:
    def test_emit_fans_out_to_all_exporters(self):
        a, b = InMemoryExporter(), InMemoryExporter()
        tracer = Tracer(a, b)
        tracer.emit(EngineStep, dt=0.1)
        assert a.events == b.events == [EngineStep(time=0.0, dt=0.1)]

    def test_emit_stamps_with_tracer_now(self):
        mem = InMemoryExporter()
        tracer = Tracer(mem)
        tracer.now = 42.5
        ev = tracer.emit(EngineStep, dt=0.1)
        assert ev.time == 42.5

    def test_explicit_t_overrides_now(self):
        mem = InMemoryExporter()
        tracer = Tracer(mem)
        tracer.now = 10.0
        ev = tracer.emit(SessionComplete, t=10.05, session="s")
        assert ev.time == 10.05

    def test_tracer_owns_a_metrics_registry(self):
        tracer = Tracer()
        tracer.metrics.inc("x")
        assert tracer.metrics.snapshot()["counters"] == {"x": 1.0}

    def test_shared_metrics_can_be_injected(self):
        shared = Metrics()
        with use_tracing(metrics=shared) as tracer:
            tracer.metrics.inc("y")
        assert shared.snapshot()["counters"] == {"y": 1.0}
