"""Top-level task callables for the runner tests.

These live in a real module (not inside a test function) because the
task model demands importable callables — a pool worker reconstructs
them from ``"module:qualname"`` paths.
"""

from __future__ import annotations

import os
import time
from typing import Any


def scaled(x: float, factor: float = 2.0, seed: int | None = None) -> float:
    """Deterministic arithmetic: cheap, picklable, seed-aware."""
    return x * factor + (seed or 0)


def pid_tag(x: int) -> tuple[int, int]:
    """(worker pid, payload) — distinguishes in-process from pooled runs."""
    return (os.getpid(), x)


def boom(seed: int | None = None) -> None:
    """Always raises; exercises failure propagation."""
    raise ValueError("boom")


def slow_identity(x: int, delay: float = 0.05) -> int:
    """Sleeps then returns; makes completion order differ from task order."""
    time.sleep(delay)
    return x


def echo_kwargs(**kwargs: Any) -> dict[str, Any]:
    """Returns its keyword arguments, seed included when injected."""
    return dict(kwargs)
