"""Content-addressed cache: key derivation, storage, failure modes."""

from __future__ import annotations

import pickle
import subprocess
import sys
from pathlib import Path

from repro.config import SimConfig
from repro.runner import MISS, ResultCache, SimTask, task, task_key
from repro.runner.fingerprint import clear_memo, code_fingerprint
from tests.runner import helpers

FP = "0" * 64  # fixed code fingerprint: key tests must not depend on the tree


def spec(**overrides) -> SimTask:
    base = dict(fn="tests.runner.helpers:scaled", kwargs={"x": 1.0}, seed=3, label="")
    base.update(overrides)
    return SimTask(**base)


# ---------------------------------------------------------------------------
# Key derivation.
# ---------------------------------------------------------------------------


def test_key_is_stable_for_equal_specs():
    assert task_key(spec(), code_fp=FP) == task_key(spec(), code_fp=FP)


def test_key_is_stable_across_processes():
    src = str(Path(__file__).resolve().parents[2] / "src")
    root = str(Path(__file__).resolve().parents[2])
    program = (
        f"import sys; sys.path[:0] = [{src!r}, {root!r}]\n"
        "from repro.runner import task_key\n"
        "from tests.runner.test_cache import FP, spec\n"
        "print(task_key(spec(), code_fp=FP))"
    )
    out = subprocess.run(
        [sys.executable, "-c", program], capture_output=True, text=True, check=True
    )
    assert out.stdout.strip() == task_key(spec(), code_fp=FP)


def test_every_payload_field_is_covered_by_the_key():
    base = task_key(spec(), code_fp=FP)
    assert task_key(spec(fn="tests.runner.helpers:pid_tag"), code_fp=FP) != base
    assert task_key(spec(kwargs={"x": 2.0}), code_fp=FP) != base
    assert task_key(spec(seed=4), code_fp=FP) != base
    assert task_key(spec(seed=None), code_fp=FP) != base


def test_label_is_cosmetic_and_excluded_from_the_key():
    assert task_key(spec(label="pretty name"), code_fp=FP) == task_key(spec(), code_fp=FP)


def test_code_fingerprint_is_part_of_the_key():
    assert task_key(spec(), code_fp=FP) != task_key(spec(), code_fp="f" * 64)


def test_sim_config_in_the_payload_changes_the_key():
    with_default = task(helpers.echo_kwargs, config=SimConfig())
    with_coarse = task(helpers.echo_kwargs, config=SimConfig(dt=0.5))
    assert task_key(with_default, code_fp=FP) == task_key(with_default, code_fp=FP)
    assert task_key(with_default, code_fp=FP) != task_key(with_coarse, code_fp=FP)


# ---------------------------------------------------------------------------
# Code fingerprint.
# ---------------------------------------------------------------------------


def synthetic_tree(root: Path) -> Path:
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "module.py").write_text("X = 1\n")
    return pkg


def test_fingerprint_changes_when_a_file_changes(tmp_path):
    pkg = synthetic_tree(tmp_path)
    before = code_fingerprint(pkg)
    (pkg / "module.py").write_text("X = 2\n")
    clear_memo()
    assert code_fingerprint(pkg) != before


def test_fingerprint_changes_on_rename_even_with_identical_bytes(tmp_path):
    pkg = synthetic_tree(tmp_path)
    before = code_fingerprint(pkg)
    (pkg / "module.py").rename(pkg / "renamed.py")
    clear_memo()
    assert code_fingerprint(pkg) != before


def test_fingerprint_is_memoised_within_a_process(tmp_path):
    pkg = synthetic_tree(tmp_path)
    before = code_fingerprint(pkg)
    (pkg / "module.py").write_text("X = 99\n")
    assert code_fingerprint(pkg) == before  # frozen-tree assumption
    clear_memo()
    assert code_fingerprint(pkg) != before


# ---------------------------------------------------------------------------
# On-disk store.
# ---------------------------------------------------------------------------


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    key = task_key(spec(), code_fp=FP)
    cache.put(key, {"bps": 1.5e9}, task=spec(), elapsed=0.2)
    assert cache.get(key) == {"bps": 1.5e9}
    assert (cache.stats.writes, cache.stats.hits) == (1, 1)


def test_none_results_are_distinguished_from_misses(tmp_path):
    cache = ResultCache(tmp_path)
    key = task_key(spec(), code_fp=FP)
    cache.put(key, None)
    assert cache.get(key) is None
    assert cache.get("ff" * 32) is MISS


def test_absent_entry_is_a_counted_miss(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("ab" * 32) is MISS
    assert cache.stats.misses == 1


def test_truncated_entry_is_a_miss_and_is_deleted(tmp_path):
    cache = ResultCache(tmp_path)
    key = task_key(spec(), code_fp=FP)
    cache.put(key, [1, 2, 3])
    path = cache.path_for(key)
    path.write_bytes(path.read_bytes()[:10])  # simulate a killed writer
    assert cache.get(key) is MISS
    assert cache.stats.corrupt == 1
    assert not path.exists()


def test_garbage_bytes_are_a_miss_and_are_deleted(tmp_path):
    cache = ResultCache(tmp_path)
    key = "cd" * 32
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not a pickle")
    assert cache.get(key) is MISS
    assert not path.exists()


def test_entry_stored_under_the_wrong_address_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    honest = task_key(spec(), code_fp=FP)
    cache.put(honest, "value")
    impostor = "12" * 32
    path = cache.path_for(impostor)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(cache.path_for(honest).read_bytes())  # key mismatch inside
    assert cache.get(impostor) is MISS
    assert cache.stats.corrupt == 1


def test_entry_that_is_not_a_dict_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ef" * 32
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps(["foreign"]))
    assert cache.get(key) is MISS


def test_unpicklable_results_are_skipped_silently(tmp_path):
    cache = ResultCache(tmp_path)
    key = task_key(spec(), code_fp=FP)
    cache.put(key, lambda: None)  # caching is best-effort
    assert cache.stats.writes == 0
    assert cache.get(key) is MISS
    assert not list(tmp_path.rglob("*.tmp.*"))


def test_put_leaves_no_temp_files_behind(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(task_key(spec(), code_fp=FP), list(range(100)))
    leftovers = [p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".pkl"]
    assert leftovers == []


def test_entries_are_sharded_by_key_prefix(tmp_path):
    cache = ResultCache(tmp_path)
    key = task_key(spec(), code_fp=FP)
    cache.put(key, 1)
    assert cache.path_for(key) == tmp_path / key[:2] / f"{key}.pkl"
    assert cache.path_for(key).exists()
