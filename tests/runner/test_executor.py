"""run_tasks semantics: ordering, fan-out, ambient config, failures."""

from __future__ import annotations

import os

import pytest

from repro.runner import (
    ResultCache,
    TaskFailure,
    TaskReport,
    current_config,
    run_tasks,
    task,
    use_runner,
)
from repro.runner import executor as executor_mod
from tests.runner import helpers


def scaled_tasks(n: int) -> list:
    return [task(helpers.scaled, x=float(i), factor=10.0) for i in range(n)]


# ---------------------------------------------------------------------------
# Serial execution (the library default).
# ---------------------------------------------------------------------------


def test_serial_results_come_back_in_task_order():
    assert run_tasks(scaled_tasks(5)) == [0.0, 10.0, 20.0, 30.0, 40.0]


def test_default_config_is_serial_and_uncached():
    config = current_config()
    assert (config.jobs, config.cache, config.progress) == (1, None, None)


def test_serial_runs_in_this_process():
    (pid, _), = run_tasks([task(helpers.pid_tag, x=1)])
    assert pid == os.getpid()


def test_empty_task_list_is_a_noop():
    assert run_tasks([]) == []


# ---------------------------------------------------------------------------
# Process fan-out.
# ---------------------------------------------------------------------------


def test_parallel_results_match_serial_and_stay_ordered():
    tasks = scaled_tasks(6)
    assert run_tasks(tasks, jobs=3, cache=None) == run_tasks(tasks, cache=None)


def test_parallel_runs_in_worker_processes():
    results = run_tasks(
        [task(helpers.pid_tag, x=i) for i in range(4)], jobs=2, cache=None
    )
    payloads = [x for _, x in results]
    assert payloads == [0, 1, 2, 3]
    assert all(pid != os.getpid() for pid, _ in results)


def test_ordering_survives_out_of_order_completion():
    # The first task sleeps longest, so it finishes last; collection
    # must still report it first.
    tasks = [
        task(helpers.slow_identity, x=i, delay=(3 - i) * 0.05) for i in range(4)
    ]
    assert run_tasks(tasks, jobs=4, cache=None) == [0, 1, 2, 3]


def test_single_pending_task_short_circuits_the_pool():
    (pid, _), = run_tasks([task(helpers.pid_tag, x=9)], jobs=8, cache=None)
    assert pid == os.getpid()


def test_worker_mode_forces_serial_execution(monkeypatch):
    monkeypatch.setattr(executor_mod, "_IN_WORKER", True)
    results = run_tasks(
        [task(helpers.pid_tag, x=i) for i in range(3)], jobs=4, cache=None
    )
    assert all(pid == os.getpid() for pid, _ in results)


# ---------------------------------------------------------------------------
# Ambient configuration.
# ---------------------------------------------------------------------------


def test_use_runner_sets_and_restores_ambient_config(tmp_path):
    cache = ResultCache(tmp_path)
    with use_runner(jobs=4, cache=cache):
        assert current_config().jobs == 4
        assert current_config().cache is cache
        with use_runner(jobs=2):
            assert current_config().jobs == 2
            assert current_config().cache is None
        assert current_config().jobs == 4
    assert current_config().jobs == 1
    assert current_config().cache is None


def test_explicit_kwargs_override_ambient_config(tmp_path):
    with use_runner(jobs=4, cache=ResultCache(tmp_path)):
        (pid, _), *rest = run_tasks(
            [task(helpers.pid_tag, x=i) for i in range(3)], jobs=1, cache=None
        )
    assert pid == os.getpid()
    assert not any(tmp_path.iterdir())  # cache=None suppressed writes


def test_ambient_cache_is_used_when_not_overridden(tmp_path):
    with use_runner(cache=ResultCache(tmp_path)):
        run_tasks(scaled_tasks(2))
    assert len(list(tmp_path.rglob("*.pkl"))) == 2


# ---------------------------------------------------------------------------
# Cache integration.
# ---------------------------------------------------------------------------


def test_cache_replays_results_without_reexecuting(tmp_path):
    tasks = [task(helpers.pid_tag, x=i) for i in range(3)]
    cache = ResultCache(tmp_path)
    first = run_tasks(tasks, cache=cache)
    second = run_tasks(tasks, cache=cache)
    assert second == first
    assert cache.stats.hits == 3
    assert cache.stats.writes == 3


def test_cached_tasks_are_reported_as_cached(tmp_path):
    cache = ResultCache(tmp_path)
    reports: list[TaskReport] = []
    tasks = scaled_tasks(2)
    run_tasks(tasks, cache=cache, progress=reports.append)
    run_tasks(tasks, cache=cache, progress=reports.append)
    assert [(r.index, r.total, r.cached) for r in reports] == [
        (0, 2, False),
        (1, 2, False),
        (0, 2, True),
        (1, 2, True),
    ]
    assert all(r.elapsed == 0.0 for r in reports if r.cached)


def test_parallel_cold_run_fills_the_cache_for_serial_replay(tmp_path):
    tasks = scaled_tasks(4)
    cache = ResultCache(tmp_path)
    cold = run_tasks(tasks, jobs=2, cache=cache)
    warm = run_tasks(tasks, jobs=1, cache=cache)
    assert warm == cold
    assert cache.stats.hits == 4


# ---------------------------------------------------------------------------
# Failure propagation.
# ---------------------------------------------------------------------------


def test_serial_failure_carries_the_task_label():
    with pytest.raises(TaskFailure, match="'bad point' failed: boom"):
        run_tasks([task(helpers.boom, label="bad point")])


def test_parallel_failure_carries_the_task_label():
    tasks = [
        task(helpers.slow_identity, x=1, delay=0.01),
        task(helpers.boom, label="pool casualty"),
        task(helpers.slow_identity, x=2, delay=0.01),
    ]
    with pytest.raises(TaskFailure, match="'pool casualty' failed: boom"):
        run_tasks(tasks, jobs=2, cache=None)


def test_failure_is_not_cached(tmp_path):
    cache = ResultCache(tmp_path)
    with pytest.raises(TaskFailure):
        run_tasks([task(helpers.boom)], cache=cache)
    assert cache.stats.writes == 0
    assert not list(tmp_path.rglob("*.pkl"))
