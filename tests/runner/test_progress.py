"""ProgressWriter: atomic line emission under concurrent reporters."""

from __future__ import annotations

import threading

from repro.runner.executor import TaskReport
from repro.runner.progress import ProgressWriter


class RecordingStream:
    """Captures every ``write()`` call separately to expose fragmenting."""

    def __init__(self):
        self.writes = []

    def write(self, text):
        self.writes.append(text)

    def flush(self):
        pass


def report(index, total=4, label="fig07", elapsed=1.25, cached=False):
    return TaskReport(index=index, total=total, label=label, elapsed=elapsed, cached=cached)


class TestFormatting:
    def test_report_renders_one_full_line(self):
        stream = RecordingStream()
        ProgressWriter(stream)(report(0))
        assert stream.writes == ["[1/4] fig07 (1.2s)\n"]

    def test_cached_reports_say_cache_instead_of_elapsed(self):
        stream = RecordingStream()
        ProgressWriter(stream)(report(2, cached=True))
        assert stream.writes == ["[3/4] fig07 (cache)\n"]

    def test_line_is_a_single_terminated_write(self):
        stream = RecordingStream()
        ProgressWriter(stream).line("hello")
        assert stream.writes == ["hello\n"]


class TestAtomicity:
    def test_concurrent_reports_never_interleave(self):
        # The regression this class exists for: print(..., file=stderr)
        # issues two writes per line, so parallel reporters interleave.
        # Every write() reaching the stream must be one complete line.
        stream = RecordingStream()
        writer = ProgressWriter(stream)
        n_threads, per_thread = 8, 50

        def pump(tid):
            for i in range(per_thread):
                writer(report(index=i, total=per_thread, label=f"job-{tid}"))

        threads = [threading.Thread(target=pump, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(stream.writes) == n_threads * per_thread
        for chunk in stream.writes:
            assert chunk.endswith("\n")
            assert chunk.count("\n") == 1
            assert chunk.startswith("[")
