"""derive_seed: stability, independence, and the 31-bit range."""

from __future__ import annotations

from repro.runner import derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(0, "fig09", "XSEDE") == derive_seed(0, "fig09", "XSEDE")
    assert derive_seed(3, "n", 8) == derive_seed(3, "n", 8)


def test_derive_seed_is_pinned_across_versions():
    # blake2b is fully specified, so these values hold on every host and
    # Python build; a change here silently invalidates every recorded
    # experiment seed.
    assert derive_seed(0) == 1277483697
    assert derive_seed(0, "fig09", "XSEDE") == 1717728022
    assert derive_seed(1, "fig09", "XSEDE") == 1052383988


def test_base_and_parts_both_matter():
    assert derive_seed(0, "a") != derive_seed(1, "a")
    assert derive_seed(0, "a") != derive_seed(0, "b")
    assert derive_seed(0, "a", "b") != derive_seed(0, "ab")
    assert derive_seed(0) != derive_seed(0, "")


def test_part_types_are_distinguished():
    # repr-based rendering keeps 1 and "1" apart.
    assert derive_seed(0, 1) != derive_seed(0, "1")


def test_seeds_fit_every_rng_constructor():
    for base in range(50):
        seed = derive_seed(base, "spread")
        assert 0 <= seed < 2**31 - 1
