"""Task model: callable paths, payload validation, canonical encoding."""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass

import numpy as np
import pytest

from repro.config import SimConfig
from repro.runner import SimTask, TaskSpecError, callable_path, resolve_callable, task
from repro.runner.task import _feed
from tests.runner import helpers

# ---------------------------------------------------------------------------
# callable_path / resolve_callable.
# ---------------------------------------------------------------------------


def test_callable_path_of_top_level_function():
    assert callable_path(helpers.scaled) == "tests.runner.helpers:scaled"


def test_callable_path_accepts_valid_string_path():
    path = "tests.runner.helpers:scaled"
    assert callable_path(path) == path


def test_callable_path_rejects_lambda():
    with pytest.raises(TaskSpecError, match="top-level"):
        callable_path(lambda x: x)


def test_callable_path_rejects_nested_function():
    def inner():
        pass

    with pytest.raises(TaskSpecError, match="top-level"):
        callable_path(inner)


def test_callable_path_rejects_bound_method():
    with pytest.raises(TaskSpecError, match="top-level"):
        callable_path(SimConfig().with_)


def test_callable_path_rejects_partial():
    with pytest.raises(TaskSpecError, match="importable name"):
        callable_path(functools.partial(helpers.scaled, 1.0))


def test_callable_path_rejects_main_module(monkeypatch):
    def orphan():
        pass

    monkeypatch.setattr(orphan, "__qualname__", "orphan")
    monkeypatch.setattr(orphan, "__module__", "__main__")
    with pytest.raises(TaskSpecError, match="__main__"):
        callable_path(orphan)


def test_callable_path_rejects_non_self_resolving():
    def impostor():
        pass

    # Claims to be helpers.scaled but is not the object import finds.
    impostor.__module__ = "tests.runner.helpers"
    impostor.__qualname__ = "scaled"
    with pytest.raises(TaskSpecError, match="resolve"):
        callable_path(impostor)


def test_resolve_callable_roundtrip():
    assert resolve_callable(callable_path(helpers.scaled)) is helpers.scaled


@pytest.mark.parametrize("path", ["no_colon", ":fn", "mod:", ""])
def test_resolve_callable_rejects_malformed_paths(path):
    with pytest.raises(TaskSpecError, match="malformed"):
        resolve_callable(path)


def test_resolve_callable_rejects_missing_module():
    with pytest.raises(TaskSpecError, match="cannot import"):
        resolve_callable("tests.runner.does_not_exist:fn")


def test_resolve_callable_rejects_non_callable_attr():
    with pytest.raises(TaskSpecError, match="callable"):
        resolve_callable("tests.runner.helpers:os")  # a module attribute


# ---------------------------------------------------------------------------
# task() construction and execution.
# ---------------------------------------------------------------------------


def test_task_builds_frozen_spec():
    spec = task(helpers.scaled, x=3.0, factor=4.0, seed=7, label="demo")
    assert spec == SimTask(
        fn="tests.runner.helpers:scaled",
        kwargs={"x": 3.0, "factor": 4.0},
        seed=7,
        label="demo",
    )
    with pytest.raises(AttributeError):
        spec.seed = 1  # type: ignore[misc]


def test_seed_is_injected_as_keyword():
    spec = task(helpers.echo_kwargs, a=1, seed=42)
    assert spec.call_kwargs() == {"a": 1, "seed": 42}
    assert spec.execute() == {"a": 1, "seed": 42}


def test_no_seed_means_no_seed_kwarg():
    spec = task(helpers.echo_kwargs, a=1)
    assert spec.call_kwargs() == {"a": 1}


def test_execute_runs_in_process():
    assert task(helpers.scaled, x=3.0, factor=4.0, seed=5).execute() == 17.0


def test_display_prefers_label_then_function_name():
    assert task(helpers.scaled, x=1.0, label="point n=8").display() == "point n=8"
    assert task(helpers.scaled, x=1.0).display() == "scaled"


def test_task_rejects_unencodable_kwargs_at_construction():
    with pytest.raises(TaskSpecError, match="canonically encode"):
        task(helpers.echo_kwargs, payload=object())
    with pytest.raises(TaskSpecError, match="canonically encode"):
        task(helpers.echo_kwargs, payload={1, 2, 3})


def test_task_rejects_non_string_dict_keys():
    with pytest.raises(TaskSpecError, match="string keys"):
        task(helpers.echo_kwargs, payload={1: "a"})


def test_task_accepts_rich_payloads():
    spec = task(
        helpers.echo_kwargs,
        array=np.arange(4, dtype=np.float64),
        config=SimConfig(),
        nested={"xs": [1, 2, (3.0, None)], "flag": True},
    )
    assert spec.kwargs["config"] == SimConfig()


# ---------------------------------------------------------------------------
# Canonical encoding distinctness.
# ---------------------------------------------------------------------------


def digest(obj) -> str:
    h = hashlib.sha256()
    _feed(h, obj)
    return h.hexdigest()


def test_feed_distinguishes_scalar_types():
    encodings = {digest(v) for v in (1, 1.0, True, "1", b"1", None)}
    assert len(encodings) == 6


def test_feed_distinguishes_container_shapes():
    assert digest([1, 2]) == digest((1, 2))  # sequences are interchangeable
    assert digest([[1], [2]]) != digest([[1, 2]])  # lengths are encoded
    assert digest(["ab"]) != digest(["a", "b"])


def test_feed_canonicalises_dict_order():
    assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})
    assert digest({"a": 1, "b": 2}) != digest({"a": 2, "b": 1})


def test_feed_covers_numpy_dtype_and_shape():
    a = np.arange(6, dtype=np.float64)
    assert digest(a) != digest(a.astype(np.float32))
    assert digest(a) != digest(a.reshape(2, 3))
    assert digest(np.float64(1.5)) == digest(1.5)  # generics decay to scalars


def test_feed_distinguishes_dataclass_types_and_fields():
    @dataclass(frozen=True)
    class Other:
        dt: float = 0.1

    assert digest(SimConfig()) != digest(SimConfig(dt=0.2))
    assert digest(SimConfig()) == digest(SimConfig())
    assert digest(Other(0.1)) != digest(SimConfig())
