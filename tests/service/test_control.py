"""Control-plane tests: admission, quotas, WDRR, preemption, breakers."""

from __future__ import annotations

import math

import pytest

from repro.service import (
    BreakerState,
    ControlPlane,
    ControlPolicy,
    FalconService,
    JobState,
    Priority,
    TenantSpec,
    TokenBucket,
)
from repro.service.control import (
    SHED_BREAKER,
    SHED_DEGRADED,
    SHED_QUEUE_FULL,
    SHED_QUOTA,
)
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import GB, MB


def make_rig(max_active=4, policy=None, seed=0):
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)
    service = FalconService(engine=engine, network=network, max_active=max_active, seed=seed)
    plane = ControlPlane(service, policy)
    return engine, service, plane


def plug_slots(service, tb, n=None):
    """Occupy slots with huge direct-submit jobs so plane jobs queue."""
    n = service.max_active if n is None else n
    return [service.submit(tb, uniform_dataset(4, 100 * GB), name=f"plug{i}") for i in range(n)]


class TestValidation:
    def test_policy_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ControlPolicy(max_queue=0)
        with pytest.raises(ValueError):
            ControlPolicy(quantum_bytes=0.0)
        with pytest.raises(ValueError):
            ControlPolicy(breaker_threshold=0)
        with pytest.raises(ValueError):
            ControlPolicy(breaker_cooldown_s=0.0)
        with pytest.raises(ValueError):
            ControlPolicy(degrade_at=0.0)
        with pytest.raises(ValueError):
            ControlPolicy(degrade_at=1.5)

    def test_tenant_spec_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            TenantSpec("")
        with pytest.raises(ValueError):
            TenantSpec("t", weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec("t", quota_rate=0.0)
        with pytest.raises(ValueError):
            TenantSpec("t", quota_burst=0)

    def test_duplicate_tenant_rejected(self):
        _, _, plane = make_rig()
        plane.register_tenant(TenantSpec("a"))
        with pytest.raises(ValueError):
            plane.register_tenant(TenantSpec("a"))

    def test_unknown_tenant_rejected(self):
        _, _, plane = make_rig()
        with pytest.raises(KeyError):
            plane.submit(hpclab(), uniform_dataset(2, 1 * GB), "ghost")

    def test_on_terminal_hook_must_be_free(self):
        _, service, _ = make_rig()
        with pytest.raises(ValueError):
            ControlPlane(service)

    def test_token_bucket_refills_on_sim_clock(self):
        bucket = TokenBucket(rate=1.0, burst=2, now=0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(1.5)
        assert not bucket.try_take(1.5)
        assert bucket.tokens < 1.0
        inf_bucket = TokenBucket(rate=math.inf, burst=1, now=0.0)
        assert all(inf_bucket.try_take(0.0) for _ in range(100))


class TestAdmission:
    def test_admitted_job_starts_when_slot_free(self):
        _, _, plane = make_rig()
        plane.register_tenant(TenantSpec("a"))
        job = plane.submit(hpclab(), uniform_dataset(2, 1 * GB), "a")
        assert job.state is JobState.RUNNING
        assert job.tenant == "a"

    def test_quota_burst_then_shed_then_refill(self):
        engine, service, plane = make_rig(max_active=1)
        plane.register_tenant(TenantSpec("a", quota_rate=0.1, quota_burst=2))
        tb = hpclab()
        plug_slots(service, tb)
        first = plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        second = plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        third = plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        assert first.state is JobState.QUEUED
        assert second.state is JobState.QUEUED
        assert third.state is JobState.REJECTED
        assert third.rejection_reason == SHED_QUOTA
        assert plane.depth == 2
        engine.run_until(15.0)  # 0.1 jobs/s * 15 s -> one token back
        fourth = plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        assert fourth.state is JobState.QUEUED

    def test_degradation_sheds_best_effort_only(self):
        _, service, plane = make_rig(
            max_active=1, policy=ControlPolicy(max_queue=4, degrade_at=0.5)
        )
        plane.register_tenant(TenantSpec("pay", priority=Priority.NORMAL))
        plane.register_tenant(TenantSpec("scav", priority=Priority.BEST_EFFORT))
        tb = hpclab()
        plug_slots(service, tb)
        early = plane.submit(tb, uniform_dataset(2, 1 * GB), "scav")
        assert early.state is JobState.QUEUED  # below the watermark
        plane.submit(tb, uniform_dataset(2, 1 * GB), "pay")
        assert plane.depth == 2  # == degrade_at * max_queue
        shed = plane.submit(tb, uniform_dataset(2, 1 * GB), "scav")
        kept = plane.submit(tb, uniform_dataset(2, 1 * GB), "pay")
        assert shed.state is JobState.REJECTED
        assert shed.rejection_reason == SHED_DEGRADED
        assert kept.state is JobState.QUEUED

    def test_full_queue_sheds_arrival_of_equal_class(self):
        _, service, plane = make_rig(max_active=1, policy=ControlPolicy(max_queue=2))
        plane.register_tenant(TenantSpec("a"))
        tb = hpclab()
        plug_slots(service, tb)
        plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        overflow = plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        assert overflow.state is JobState.REJECTED
        assert overflow.rejection_reason == SHED_QUEUE_FULL
        assert plane.depth == 2

    def test_full_queue_evicts_newest_lower_class_job(self):
        _, service, plane = make_rig(
            max_active=1, policy=ControlPolicy(max_queue=2, degrade_at=1.0)
        )
        plane.register_tenant(TenantSpec("scav", priority=Priority.BEST_EFFORT))
        plane.register_tenant(TenantSpec("gold", priority=Priority.HIGH))
        tb = hpclab()
        plug_slots(service, tb)
        older = plane.submit(tb, uniform_dataset(2, 1 * GB), "scav")
        newer = plane.submit(tb, uniform_dataset(2, 1 * GB), "scav")
        vip = plane.submit(tb, uniform_dataset(2, 1 * GB), "gold")
        assert vip.state is JobState.QUEUED
        assert newer.state is JobState.REJECTED
        assert newer.rejection_reason == SHED_QUEUE_FULL
        assert older.state is JobState.QUEUED
        assert plane.depth == 2

    def test_shed_jobs_are_audited_and_cost_no_slot(self):
        _, service, plane = make_rig(max_active=1, policy=ControlPolicy(max_queue=1))
        plane.register_tenant(TenantSpec("a"))
        tb = hpclab()
        plug_slots(service, tb)
        plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        running_before = len(service.running())
        overflow = plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        assert overflow in plane.shed
        assert overflow in service.jobs  # registered: full audit trail
        assert overflow.finished_at is not None
        assert len(service.running()) == running_before
        assert all(j.rejection_reason for j in plane.shed)


class TestScheduling:
    def pick_tenants(self, plane, n):
        return [plane._pick().tenant for _ in range(n)]

    def test_wdrr_weight_ratio_within_class(self):
        _, service, plane = make_rig(
            max_active=1, policy=ControlPolicy(quantum_bytes=1 * GB)
        )
        plane.register_tenant(TenantSpec("a", weight=2.0))
        plane.register_tenant(TenantSpec("b", weight=1.0))
        tb = hpclab()
        plug_slots(service, tb)
        for i in range(4):
            plane.submit(tb, uniform_dataset(1, 1 * GB), "a", name=f"a{i}")
            plane.submit(tb, uniform_dataset(1, 1 * GB), "b", name=f"b{i}")
        assert self.pick_tenants(plane, 6) == ["a", "a", "b", "a", "a", "b"]

    def test_wdrr_is_byte_denominated(self):
        # Equal weights, 2x job sizes: per round each tenant moves the
        # same bytes, so the small-job tenant serves twice as often.
        _, service, plane = make_rig(
            max_active=1, policy=ControlPolicy(quantum_bytes=2 * GB)
        )
        plane.register_tenant(TenantSpec("big"))
        plane.register_tenant(TenantSpec("small"))
        tb = hpclab()
        plug_slots(service, tb)
        for i in range(4):
            plane.submit(tb, uniform_dataset(1, 2 * GB), "big", name=f"big{i}")
            plane.submit(tb, uniform_dataset(2, 500 * MB), "small", name=f"s{2 * i}")
            plane.submit(tb, uniform_dataset(2, 500 * MB), "small", name=f"s{2 * i + 1}")
        assert self.pick_tenants(plane, 6) == ["big", "small", "small", "big", "small", "small"]

    def test_classes_served_strictly_high_to_low(self):
        _, service, plane = make_rig(max_active=1)
        plane.register_tenant(TenantSpec("scav", priority=Priority.BEST_EFFORT))
        plane.register_tenant(TenantSpec("norm", priority=Priority.NORMAL))
        plane.register_tenant(TenantSpec("gold", priority=Priority.HIGH))
        tb = hpclab()
        plug_slots(service, tb)
        plane.submit(tb, uniform_dataset(1, 1 * GB), "scav")
        plane.submit(tb, uniform_dataset(1, 1 * GB), "norm")
        plane.submit(tb, uniform_dataset(1, 1 * GB), "gold")
        assert self.pick_tenants(plane, 3) == ["gold", "norm", "scav"]

    def test_idle_queue_forfeits_deficit(self):
        _, service, plane = make_rig(
            max_active=1, policy=ControlPolicy(quantum_bytes=1 * GB)
        )
        plane.register_tenant(TenantSpec("a", weight=4.0))
        plane.register_tenant(TenantSpec("b"))
        tb = hpclab()
        plug_slots(service, tb)
        plane.submit(tb, uniform_dataset(1, 1 * GB), "a", name="a0")
        plane.submit(tb, uniform_dataset(1, 1 * GB), "b", name="b0")
        assert self.pick_tenants(plane, 2) == ["a", "b"]
        # Tenant a banked 3 GB of deficit, then went idle: new work
        # must not burst through on stale credit.
        assert plane._tenants["a"].deficit == 0.0


class TestPreemption:
    def make_two_class_rig(self, **policy_kw):
        engine, service, plane = make_rig(max_active=1, policy=ControlPolicy(**policy_kw))
        plane.register_tenant(TenantSpec("scav", priority=Priority.BEST_EFFORT))
        plane.register_tenant(TenantSpec("gold", priority=Priority.HIGH))
        return engine, service, plane

    def test_high_class_preempts_and_victim_resumes_exactly_once(self):
        engine, service, plane = self.make_two_class_rig()
        tb = hpclab()
        victim = plane.submit(tb, uniform_dataset(10, 500 * MB), "scav")
        assert victim.state is JobState.RUNNING
        vip = plane.submit(tb, uniform_dataset(4, 500 * MB), "gold")
        assert vip.state is JobState.RUNNING
        assert victim.state is JobState.QUEUED
        assert victim.preemptions == 1
        engine.run_until(400.0)
        assert vip.state is JobState.COMPLETED
        assert victim.state is JobState.COMPLETED
        # Files delivered exactly once across the suspend/resume.
        assert victim.report.files == 10
        assert victim.report.bytes_moved == pytest.approx(10 * 500 * MB, rel=1e-3)
        assert victim.report.preemptions == 1
        # The high job never waited behind best-effort work.
        assert vip.finished_at < victim.finished_at

    def test_same_class_never_preempts(self):
        engine, service, plane = make_rig(max_active=1)
        plane.register_tenant(TenantSpec("a"))
        plane.register_tenant(TenantSpec("b"))
        tb = hpclab()
        first = plane.submit(tb, uniform_dataset(4, 1 * GB), "a")
        second = plane.submit(tb, uniform_dataset(4, 1 * GB), "b")
        assert first.state is JobState.RUNNING
        assert second.state is JobState.QUEUED
        assert first.preemptions == 0

    def test_preemption_can_be_disabled(self):
        engine, service, plane = self.make_two_class_rig(preemption=False)
        tb = hpclab()
        victim = plane.submit(tb, uniform_dataset(10, 1 * GB), "scav")
        vip = plane.submit(tb, uniform_dataset(4, 1 * GB), "gold")
        assert victim.state is JobState.RUNNING
        assert vip.state is JobState.QUEUED

    def test_direct_submissions_are_never_preempted(self):
        engine, service, plane = self.make_two_class_rig()
        tb = hpclab()
        legacy = service.submit(tb, uniform_dataset(10, 1 * GB), name="legacy")
        vip = plane.submit(tb, uniform_dataset(4, 1 * GB), "gold")
        assert legacy.state is JobState.RUNNING
        assert vip.state is JobState.QUEUED


class TestCircuitBreaker:
    def make_flaky_rig(self):
        engine, service, plane = make_rig(
            max_active=2,
            policy=ControlPolicy(breaker_threshold=2, breaker_cooldown_s=10.0),
        )
        plane.register_tenant(TenantSpec("a"))
        return engine, service, plane, hpclab()

    def trip(self, service, plane, tb):
        for _ in range(2):
            job = plane.submit(tb, uniform_dataset(4, 10 * GB), "a")
            assert job.state is JobState.RUNNING
            service.crash_job(job)  # no fault policy -> FAILED
            assert job.state is JobState.FAILED

    def test_consecutive_failures_open_then_shed(self):
        engine, service, plane, tb = self.make_flaky_rig()
        self.trip(service, plane, tb)
        assert plane.breaker_state(tb) is BreakerState.OPEN
        shed = plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        assert shed.state is JobState.REJECTED
        assert shed.rejection_reason == SHED_BREAKER

    def test_half_open_admits_single_probe(self):
        engine, service, plane, tb = self.make_flaky_rig()
        self.trip(service, plane, tb)
        engine.run_until(11.0)
        probe = plane.submit(tb, uniform_dataset(2, 100 * MB), "a")
        assert probe.state is JobState.RUNNING
        assert plane.breaker_state(tb) is BreakerState.HALF_OPEN
        rival = plane.submit(tb, uniform_dataset(2, 100 * MB), "a")
        assert rival.state is JobState.REJECTED  # one probe at a time
        assert rival.rejection_reason == SHED_BREAKER

    def test_probe_success_closes(self):
        engine, service, plane, tb = self.make_flaky_rig()
        self.trip(service, plane, tb)
        engine.run_until(11.0)
        probe = plane.submit(tb, uniform_dataset(2, 100 * MB), "a")
        engine.run_until(120.0)
        assert probe.state is JobState.COMPLETED
        assert plane.breaker_state(tb) is BreakerState.CLOSED
        healthy = plane.submit(tb, uniform_dataset(2, 100 * MB), "a")
        assert healthy.state is JobState.RUNNING

    def test_probe_failure_reopens_for_full_cooldown(self):
        engine, service, plane, tb = self.make_flaky_rig()
        self.trip(service, plane, tb)
        engine.run_until(11.0)
        probe = plane.submit(tb, uniform_dataset(4, 10 * GB), "a")
        service.crash_job(probe)
        assert plane.breaker_state(tb) is BreakerState.OPEN
        shed = plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        assert shed.rejection_reason == SHED_BREAKER
        engine.run_until(22.0)
        retry = plane.submit(tb, uniform_dataset(2, 100 * MB), "a")
        assert retry.state is JobState.RUNNING

    def test_cancelled_probe_releases_the_breaker(self):
        engine, service, plane, tb = self.make_flaky_rig()
        self.trip(service, plane, tb)
        engine.run_until(11.0)
        probe = plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        service.cancel(probe)
        assert plane.breaker_state(tb) is BreakerState.HALF_OPEN
        next_probe = plane.submit(tb, uniform_dataset(2, 100 * MB), "a")
        assert next_probe.state is JobState.RUNNING  # probe slot was released


class TestCancellation:
    def test_cancel_queued_plane_job_cleans_queue(self):
        _, service, plane = make_rig(max_active=1)
        plane.register_tenant(TenantSpec("a"))
        tb = hpclab()
        plug_slots(service, tb)
        job = plane.submit(tb, uniform_dataset(2, 1 * GB), "a")
        assert job.state is JobState.QUEUED
        service.cancel(job)
        assert job.state is JobState.CANCELLED
        assert plane.depth == 0
        assert plane.queued() == []

    def test_terminal_jobs_free_slots_for_queued_work(self):
        engine, service, plane = make_rig(max_active=1)
        plane.register_tenant(TenantSpec("a"))
        tb = hpclab()
        first = plane.submit(tb, uniform_dataset(2, 500 * MB), "a")
        second = plane.submit(tb, uniform_dataset(2, 500 * MB), "a")
        assert second.state is JobState.QUEUED
        engine.run_until(200.0)
        assert first.state is JobState.COMPLETED
        assert second.state is JobState.COMPLETED
