"""Property-based churn: the control plane never leaks or double-ends jobs.

Hypothesis drives random interleavings of submit / cancel / crash /
time-advance against a small control plane, then drains.  Whatever the
schedule, the invariants hold:

* every job reaches **exactly one** terminal state (the sum of the
  per-state counts equals the job count — no job terminal twice, none
  stuck non-terminal after the drain);
* every REJECTED job carries a typed reason from the closed vocabulary;
* the service's FIFO ``_queue`` never holds control-plane jobs, and
  ``_active`` / the plane's queues are empty once drained;
* the plane's running ``depth`` counter always equals the sum of its
  tenant queues (checked after every operation, not just at the end).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.service import (  # noqa: E402
    ControlPlane,
    ControlPolicy,
    FalconService,
    JobState,
    Priority,
    RetryPolicy,
    TenantSpec,
)
from repro.service.control import (  # noqa: E402
    SHED_BREAKER,
    SHED_DEGRADED,
    SHED_QUEUE_FULL,
    SHED_QUOTA,
)
from repro.sim.engine import SimulationEngine  # noqa: E402
from repro.testbeds.presets import hpclab  # noqa: E402
from repro.transfer.dataset import uniform_dataset  # noqa: E402
from repro.transfer.executor import FluidTransferNetwork  # noqa: E402
from repro.units import MB  # noqa: E402

REASONS = {SHED_QUOTA, SHED_QUEUE_FULL, SHED_DEGRADED, SHED_BREAKER}

#: (op, arg) pairs; args index into tenants / live jobs deterministically.
OPS = st.lists(
    st.tuples(
        st.sampled_from(["submit", "cancel", "crash", "advance"]),
        st.integers(min_value=0, max_value=5),
    ),
    max_size=30,
)


def make_rig():
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)
    service = FalconService(
        engine=engine,
        network=network,
        max_active=2,
        seed=0,
        fault_policy=RetryPolicy(max_restarts=1),
    )
    plane = ControlPlane(
        service,
        ControlPolicy(max_queue=4, degrade_at=0.5, breaker_threshold=2, breaker_cooldown_s=5.0),
    )
    plane.register_tenant(TenantSpec("scav", priority=Priority.BEST_EFFORT))
    plane.register_tenant(TenantSpec("norm", quota_rate=0.5, quota_burst=3))
    plane.register_tenant(TenantSpec("gold", weight=2.0, priority=Priority.HIGH))
    return engine, service, plane


def check_depth(plane):
    actual = sum(len(t.queue) for t in plane._tenants.values())
    assert plane.depth == actual
    assert all(j.state is JobState.QUEUED for j in plane.queued())


@settings(deadline=None, max_examples=25)
@given(ops=OPS)
def test_churn_preserves_lifecycle_invariants(ops):
    engine, service, plane = make_rig()
    tb = hpclab()
    tenants = ["scav", "norm", "gold"]
    jobs = []
    for op, arg in ops:
        if op == "submit":
            jobs.append(
                plane.submit(
                    tb,
                    uniform_dataset(1 + arg % 3, 50 * MB),
                    tenants[arg % 3],
                    name=f"j{len(jobs)}",
                )
            )
        elif op == "cancel":
            live = [j for j in jobs if not j.state.is_terminal]
            if live:
                service.cancel(live[arg % len(live)])
        elif op == "crash":
            running = service.running()
            if running:
                service.crash_job(running[arg % len(running)])
        else:  # advance
            engine.run_until(engine.now + 0.5 * (1 + arg))
        check_depth(plane)
        assert not any(j.tenant is not None for j in service._queue)
    # Drain: no new arrivals, bounded wait.
    for _ in range(60):
        if plane.depth == 0 and not service.running():
            break
        engine.run_until(engine.now + 30.0)
    assert plane.depth == 0
    assert service.running() == []
    assert service.queued() == []
    check_depth(plane)
    # Exactly one terminal state each.
    for job in jobs:
        assert job.state.is_terminal, job
        assert job.finished_at is not None
        if job.state is JobState.REJECTED:
            assert job.rejection_reason in REASONS
        else:
            assert job.rejection_reason is None
    terminal_counts = sum(
        [
            sum(1 for j in jobs if j.state is s)
            for s in (
                JobState.COMPLETED,
                JobState.FAILED,
                JobState.CANCELLED,
                JobState.REJECTED,
            )
        ]
    )
    assert terminal_counts == len(jobs)
    assert all(any(s is j for j in jobs) for s in plane.shed)
    assert all(j.state is JobState.REJECTED for j in plane.shed)
