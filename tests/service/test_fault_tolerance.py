"""Retry, watchdog, restart, and FAILED-path behaviour of the service."""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, FaultPlan, JobCrash, TransferStall, WorkerCrash
from repro.service import FalconService, JobState, RetryPolicy
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngStreams
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import GB


def make_rig(policy=None, seed=0):
    engine = SimulationEngine(dt=0.1)
    net = FluidTransferNetwork(engine)
    service = FalconService(engine=engine, network=net, seed=seed, fault_policy=policy)
    return engine, net, service


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        p = RetryPolicy(backoff_base=2.0, backoff_multiplier=2.0, backoff_cap=30.0, backoff_jitter=0.0)
        assert p.backoff(1) == 2.0
        assert p.backoff(2) == 4.0
        assert p.backoff(5) == 30.0  # 2 * 2**4 = 32 -> cap

    def test_jitter_scales_up_only(self):
        p = RetryPolicy(backoff_base=10.0, backoff_jitter=0.5)
        assert p.backoff(1, u=0.0) == 10.0
        assert p.backoff(1, u=1.0) == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_restarts=-1)


class TestWorkerRetry:
    def test_crashed_file_retries_and_job_completes(self):
        engine, net, service = make_rig(policy=RetryPolicy())
        job = service.submit(hpclab(), uniform_dataset(40, 1 * GB))
        plan = FaultPlan(events=(WorkerCrash(at=5.0, session=job.name, worker=0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0), service=service).arm()
        engine.run_until(120.0)
        assert job.state is JobState.COMPLETED
        assert job.report.completed
        assert job.report.files == 40
        assert job.report.retries == 1
        assert job.report.worker_crashes == 1
        assert any(kind == "retry" for _, kind, _ in job.events)

    def test_held_file_blocks_premature_completion(self):
        # Tiny dataset: the crashed file is the only remaining work, so
        # the session must wait out the backoff instead of completing
        # without it.
        engine, net, service = make_rig(policy=RetryPolicy())
        job = service.submit(hpclab(), uniform_dataset(3, 1 * GB))
        plan = FaultPlan(events=(WorkerCrash(at=1.0, session=job.name, worker=0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0), service=service).arm()
        engine.run_until(60.0)
        assert job.state is JobState.COMPLETED
        assert job.report.files == 3

    def test_attempts_exhausted_fails_job_without_hanging(self):
        engine, net, service = make_rig(policy=RetryPolicy(max_attempts=1))
        job = service.submit(hpclab(), uniform_dataset(40, 1 * GB), name="doomed")
        later = service.submit(hpclab(), uniform_dataset(2, 1 * GB), name="waiting")
        service.max_active = 1
        # Force FIFO: only the first job runs until it fails.
        assert job.state is JobState.RUNNING
        plan = FaultPlan(events=(WorkerCrash(at=5.0, session="doomed", worker=0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0), service=service).arm()
        engine.run_until(60.0)
        assert job.state is JobState.FAILED
        assert not job.report.completed
        assert 0 < job.report.files < 40  # partial progress reported
        assert job.report.failed_files == 1
        assert any(kind == "failed" for _, kind, _ in job.events)
        # The slot was freed: the queued job ran to completion.
        assert later.state is JobState.COMPLETED


class TestWatchdog:
    def test_watchdog_kills_stalled_worker_and_job_completes(self):
        policy = RetryPolicy(stall_timeout=10.0, watchdog_interval=2.0)
        engine, net, service = make_rig(policy=policy)
        job = service.submit(hpclab(), uniform_dataset(40, 1 * GB))
        # Stall one worker far longer than the timeout; without the
        # watchdog its file would sit frozen for 500 s.
        plan = FaultPlan(events=(TransferStall(at=5.0, duration=500.0, session=job.name, worker=0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0), service=service).arm()
        engine.run_until(120.0)
        assert job.state is JobState.COMPLETED
        assert job.report.files == 40
        assert any(kind == "watchdog-kill" for _, kind, _ in job.events)
        assert job.report.worker_crashes >= 1

    def test_no_watchdog_without_policy(self):
        engine, net, service = make_rig(policy=None)
        job = service.submit(hpclab(), uniform_dataset(10, 1 * GB))
        assert "watchdog" not in job._extras


class TestJobRestart:
    def test_job_crash_restarts_and_resumes(self):
        engine, net, service = make_rig(policy=RetryPolicy(max_restarts=2))
        job = service.submit(hpclab(), uniform_dataset(40, 1 * GB))
        plan = FaultPlan(events=(JobCrash(at=6.0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0), service=service).arm()
        engine.run_until(150.0)
        assert job.state is JobState.COMPLETED
        assert job.report.restarts == 1
        # Exactly-once: completions across incarnations sum to the
        # dataset, nothing double-delivered from the resumed queue.
        assert job.report.files == 40
        assert any(kind == "restart" for _, kind, _ in job.events)

    def test_job_crash_without_policy_is_fatal(self):
        engine, net, service = make_rig(policy=None)
        job = service.submit(hpclab(), uniform_dataset(40, 1 * GB))
        plan = FaultPlan(events=(JobCrash(at=6.0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0), service=service).arm()
        engine.run_until(120.0)
        assert job.state is JobState.FAILED
        assert not job.report.completed
        assert 0 < job.report.files < 40

    def test_restarts_exhausted_fails(self):
        engine, net, service = make_rig(policy=RetryPolicy(max_restarts=1))
        job = service.submit(hpclab(), uniform_dataset(60, 1 * GB))
        plan = FaultPlan(events=(JobCrash(at=4.0), JobCrash(at=8.0)))
        FaultInjector(engine, net, plan, streams=RngStreams(0), service=service).arm()
        engine.run_until(200.0)
        assert job.state is JobState.FAILED
        assert job.report.restarts == 1

    def test_report_spans_incarnations(self):
        engine, net, service = make_rig(policy=RetryPolicy())
        job = service.submit(hpclab(), uniform_dataset(40, 1 * GB))
        plan = FaultPlan(events=(JobCrash(at=6.0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0), service=service).arm()
        engine.run_until(150.0)
        report = job.report
        assert report.bytes_moved == pytest.approx(40 * 1 * GB)
        # Duration covers the whole job, not just the last incarnation.
        assert report.duration == pytest.approx(job.finished_at - job.started_at)


class TestQueueDiscipline:
    def test_fifo_dispatch_uses_deque(self):
        engine, net, service = make_rig()
        service.max_active = 1
        tb = hpclab()
        first = service.submit(tb, uniform_dataset(2, 1 * GB), name="a")
        second = service.submit(tb, uniform_dataset(2, 1 * GB), name="b")
        third = service.submit(tb, uniform_dataset(2, 1 * GB), name="c")
        assert first.state is JobState.RUNNING
        assert [j.name for j in service.queued()] == ["b", "c"]
        engine.run_until(60.0)
        order = sorted(
            (j.started_at, j.name) for j in (first, second, third)
        )
        assert [name for _, name in order] == ["a", "b", "c"]
