"""Falcon transfer-service tests."""

from __future__ import annotations

import pytest

from repro.service import FalconService, JobState
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import GB, MB


def make_service(max_active=4, seed=0):
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)
    return FalconService(engine=engine, network=network, max_active=max_active, seed=seed)


class TestSubmission:
    def test_job_starts_immediately_with_free_slot(self):
        svc = make_service()
        job = svc.submit(hpclab(), uniform_dataset(10, 1 * GB))
        assert job.state is JobState.RUNNING
        assert job.started_at == 0.0

    def test_job_ids_increment(self):
        svc = make_service()
        tb = hpclab()
        a = svc.submit(tb, uniform_dataset(5, 1 * MB))
        b = svc.submit(tb, uniform_dataset(5, 1 * MB))
        assert b.job_id == a.job_id + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            make_service(max_active=0)


class TestQueueing:
    def test_excess_jobs_queue_fifo(self):
        svc = make_service(max_active=1)
        tb = hpclab()
        first = svc.submit(tb, uniform_dataset(10, 1 * GB), name="first")
        second = svc.submit(tb, uniform_dataset(10, 1 * GB), name="second")
        assert first.state is JobState.RUNNING
        assert second.state is JobState.QUEUED
        assert svc.queued() == [second]

    def test_queued_job_starts_when_slot_frees(self):
        svc = make_service(max_active=1)
        tb = hpclab()
        first = svc.submit(tb, uniform_dataset(5, 100 * MB), name="first")
        second = svc.submit(tb, uniform_dataset(5, 100 * MB), name="second")
        svc.engine.run_for(120.0)
        assert first.state is JobState.COMPLETED
        assert second.state in (JobState.RUNNING, JobState.COMPLETED)
        assert second.started_at is not None
        assert second.queue_wait > 0

    def test_parallel_jobs_share_fairly(self):
        svc = make_service(max_active=2)
        tb = hpclab()
        a = svc.submit(tb, uniform_dataset(200, 1 * GB), name="a")
        b = svc.submit(tb, uniform_dataset(200, 1 * GB), name="b")
        svc.engine.run_for(200.0)
        assert a.state is JobState.COMPLETED
        assert b.state is JobState.COMPLETED
        ratio = a.report.mean_throughput_bps / b.report.mean_throughput_bps
        assert 0.75 <= ratio <= 1.33


class TestCompletionReports:
    def test_report_accounts_all_bytes(self):
        svc = make_service()
        job = svc.submit(hpclab(), uniform_dataset(20, 500 * MB))
        svc.engine.run_for(120.0)
        assert job.state is JobState.COMPLETED
        report = job.report
        assert report.bytes_moved == pytest.approx(20 * 500 * MB, rel=1e-3)
        assert report.files == 20
        assert report.mean_throughput_bps > 0
        assert report.decisions > 0
        assert report.process_seconds > 0

    def test_report_summary_renders(self):
        svc = make_service()
        job = svc.submit(hpclab(), uniform_dataset(5, 100 * MB))
        svc.engine.run_for(60.0)
        assert "files" in job.report.summary()

    def test_falcon_quality_in_service(self):
        """The service's agent should beat a 1-worker transfer handily."""
        svc = make_service()
        job = svc.submit(hpclab(), uniform_dataset(100, 1 * GB))
        svc.engine.run_for(120.0)
        # 100 GB at >= 15 Gbps mean (single worker would give 3.2 Gbps).
        assert job.report.mean_throughput_bps > 15e9


class TestCancellation:
    def test_cancel_queued(self):
        svc = make_service(max_active=1)
        tb = hpclab()
        svc.submit(tb, uniform_dataset(10, 1 * GB))
        waiting = svc.submit(tb, uniform_dataset(10, 1 * GB))
        svc.cancel(waiting)
        assert waiting.state is JobState.CANCELLED
        assert svc.queued() == []

    def test_cancel_running_returns_in_flight_files(self):
        """Cancelling a running job must not strand in-progress files:
        they go back to the queue with progress kept."""
        svc = make_service()
        job = svc.submit(hpclab(), uniform_dataset(50, 1 * GB))
        svc.engine.run_for(10.0)
        session = job._extras["session"]
        in_flight = int(session.has_file.sum())
        assert in_flight > 0  # mid-transfer by construction
        before = session.queue.remaining_files
        svc.cancel(job)
        assert session.rates.size == 0
        assert session.queue.remaining_files == before + in_flight
        # Every file is either completed or back in the queue.
        assert session.files_completed + session.queue.remaining_files == 50

    def test_cancel_running_attaches_partial_report(self):
        svc = make_service()
        job = svc.submit(hpclab(), uniform_dataset(50, 1 * GB))
        svc.engine.run_for(10.0)
        svc.cancel(job)
        report = job.report
        assert report is not None
        assert report.bytes_moved > 0
        assert report.duration == pytest.approx(10.0)
        assert report.bytes_moved == pytest.approx(
            report.mean_throughput_bps * report.duration / 8.0
        )
        assert report.files < 50

    def test_cancel_then_resubmit_same_dataset(self):
        """A cancelled job's dataset can be resubmitted and completes."""
        svc = make_service(max_active=1)
        tb = hpclab()
        dataset = uniform_dataset(30, 1 * GB)
        first = svc.submit(tb, dataset, name="first-attempt")
        svc.engine.run_for(5.0)
        svc.cancel(first)
        assert first.state is JobState.CANCELLED
        retry = svc.submit(tb, dataset, name="retry")
        svc.engine.run_for(120.0)
        assert retry.state is JobState.COMPLETED
        assert retry.report.bytes_moved == pytest.approx(30 * GB, rel=1e-3)
        assert retry.report.files == 30

    def test_cancel_running_frees_slot(self):
        svc = make_service(max_active=1)
        tb = hpclab()
        running = svc.submit(tb, uniform_dataset(100, 1 * GB), name="running")
        waiting = svc.submit(tb, uniform_dataset(5, 100 * MB), name="waiting")
        svc.engine.run_for(10.0)
        svc.cancel(running)
        assert running.state is JobState.CANCELLED
        assert waiting.state is JobState.RUNNING
        svc.engine.run_for(60.0)
        assert waiting.state is JobState.COMPLETED
