"""Sharded control plane: parity, placement, rebalance, isolation.

The headline contract is the first class: a 1-shard
:class:`ShardedControlPlane` driven exactly like an unsharded
:class:`ControlPlane` produces *byte-identical* results — same job
outcomes, same rejection reasons, and the same trace event stream down
to every encoded field.  The rest covers what only exists at 2+
shards: deterministic placement, rebalance-on-shed with
``shard.saturated`` accounting, shard-local breaker scoping, the
factory requirement, and the global quota staying global.
"""

from __future__ import annotations

import math

import pytest

from repro.config import DEFAULT_CONFIG
from repro.obs import InMemoryExporter
from repro.obs.events import JobRouted, ShardSaturated
from repro.obs.exporters import encode_event
from repro.obs.tracer import use_tracing
from repro.service import (
    BreakerState,
    ControlPlane,
    ControlPolicy,
    FalconService,
    JobState,
    Priority,
    ShardedControlPlane,
    ShardRouter,
    TenantSpec,
    make_shards,
)
from repro.service.control import SHED_BREAKER, SHED_QUEUE_FULL, SHED_QUOTA
from repro.service.sharding import PLACEMENTS, _stable_index
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import campus_cluster, hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import GB, MB


def _drive(plane, run_until, submit_testbed):
    """One scripted multi-tenant session against either plane kind."""
    plane.register_tenant(TenantSpec("alpha", weight=2.0, quota_rate=0.05, quota_burst=2))
    plane.register_tenant(TenantSpec("beta", priority=Priority.BEST_EFFORT))
    ds = uniform_dataset(3, 150 * MB)
    out = []
    for i in range(30):
        run_until(i * 5.0)
        tenant = "alpha" if i % 3 else "beta"
        job = plane.submit(submit_testbed, ds, tenant, name=f"j{i}")
        out.append((job.name, job.state.name, job.rejection_reason))
    run_until(1200.0)
    return out


class TestShardParity:
    """shards=1 is the unsharded control plane, bit for bit."""

    def test_one_shard_matches_unsharded_plane_exactly(self):
        policy = ControlPolicy(max_queue=6)

        flat_exp = InMemoryExporter()
        with use_tracing(flat_exp):
            engine = SimulationEngine(dt=DEFAULT_CONFIG.dt)
            network = FluidTransferNetwork(engine, DEFAULT_CONFIG)
            service = FalconService(engine=engine, network=network, max_active=4, seed=3)
            flat = ControlPlane(service, policy)
            flat_out = _drive(flat, engine.run_until, hpclab())

        shard_exp = InMemoryExporter()
        with use_tracing(shard_exp):
            shards = make_shards(1, seed=3, max_active=4)
            plane = ShardedControlPlane(shards, policy)
            # A bare Testbed is allowed at one shard — parity with the
            # unsharded call signature.
            shard_out = _drive(plane, plane.run_until, hpclab())

        assert shard_out == flat_out
        flat_events = [encode_event(e) for e in flat_exp.events]
        shard_events = [encode_event(e) for e in shard_exp.events]
        assert shard_events == flat_events

    def test_one_shard_emits_no_routing_events(self):
        exporter = InMemoryExporter()
        with use_tracing(exporter):
            plane = ShardedControlPlane(make_shards(1, seed=0))
            plane.register_tenant(TenantSpec("t"))
            plane.submit(hpclab(), uniform_dataset(1, 64 * MB), "t")
        kinds = {type(e) for e in exporter.events}
        assert JobRouted not in kinds
        assert ShardSaturated not in kinds


class TestPlacement:
    def test_policy_vocabulary_is_closed(self):
        shards = make_shards(2, seed=0)
        with pytest.raises(ValueError, match="unknown placement"):
            ShardRouter(shards, "round_robin")
        for policy in PLACEMENTS:
            ShardRouter(shards, policy)

    def test_stable_index_is_deterministic_and_in_range(self):
        for n in (1, 2, 4, 7):
            for key in ("hpclab", "campus", "tenant-a"):
                i = _stable_index(key, n)
                assert i == _stable_index(key, n)
                assert 0 <= i < n

    def test_affinity_policies_ignore_load(self):
        shards = make_shards(4, seed=0)
        by_tenant = ShardRouter(shards, "by_tenant")
        by_testbed = ShardRouter(shards, "by_testbed")
        first = by_tenant.place("alpha", "hpclab")
        assert all(by_tenant.place("alpha", f"tb{i}") is first for i in range(8))
        first = by_testbed.place("alpha", "hpclab")
        assert all(by_testbed.place(f"t{i}", "hpclab") is first for i in range(8))

    def test_least_loaded_breaks_ties_by_index(self):
        shards = make_shards(3, seed=0)
        router = ShardRouter(shards, "least_loaded")
        assert router.place("any", "any") is shards[0]

    def test_same_seed_same_routing(self):
        def session():
            plane = ShardedControlPlane(make_shards(4, seed=11), placement="least_loaded")
            plane.register_tenant(TenantSpec("t"))
            names = []
            for i in range(24):
                plane.run_until(i * 2.0)
                job = plane.submit(hpclab, uniform_dataset(2, 400 * MB), "t", name=f"j{i}")
                shard = next(
                    s for s in plane.shards if any(j is job for j in s.service.jobs)
                )
                names.append(shard.name)
            return names

        assert session() == session()

    def test_multi_shard_requires_testbed_factory(self):
        plane = ShardedControlPlane(make_shards(2, seed=0))
        plane.register_tenant(TenantSpec("t"))
        with pytest.raises(ValueError, match="factory"):
            plane.submit(hpclab(), uniform_dataset(1, 64 * MB), "t")

    def test_shards_localize_independent_testbed_replicas(self):
        shards = make_shards(3, seed=0)
        replicas = [shard.localize(hpclab) for shard in shards]
        assert len({id(r) for r in replicas}) == 3
        assert all(shard.localize(hpclab) is replicas[i] for i, shard in enumerate(shards))


class TestRebalanceOnShed:
    def _saturating_plane(self, rebalance=True):
        # by_tenant pins every job's home to one shard; single slot +
        # tiny queue saturate it after a couple of submissions.
        shards = make_shards(3, seed=0, max_active=1)
        plane = ShardedControlPlane(
            shards,
            ControlPolicy(max_queue=2, degrade_at=1.0, preemption=False),
            placement="by_tenant",
            rebalance=rebalance,
        )
        plane.register_tenant(TenantSpec("pinned"))
        return plane

    def test_saturated_home_reroutes_instead_of_shedding(self):
        plane = self._saturating_plane()
        exporter = InMemoryExporter()
        with use_tracing(exporter):
            jobs = [
                plane.submit(hpclab, uniform_dataset(1, 10 * GB), "pinned", name=f"j{i}")
                for i in range(9)
            ]
        assert all(j.state is not JobState.REJECTED for j in jobs)
        saturated = [e for e in exporter.events if isinstance(e, ShardSaturated)]
        assert saturated
        assert all(e.reason == SHED_QUEUE_FULL for e in saturated)
        assert all(e.rerouted_to != "" for e in saturated)
        # Overflow landed on shards other than the pinned home.
        homes = {e.shard for e in saturated}
        assert all(e.rerouted_to not in homes for e in saturated)

    def test_rebalance_off_sheds_at_home(self):
        plane = self._saturating_plane(rebalance=False)
        exporter = InMemoryExporter()
        with use_tracing(exporter):
            jobs = [
                plane.submit(hpclab, uniform_dataset(1, 10 * GB), "pinned", name=f"j{i}")
                for i in range(9)
            ]
        shed = [j for j in jobs if j.state is JobState.REJECTED]
        assert shed
        assert all(j.rejection_reason == SHED_QUEUE_FULL for j in shed)
        saturated = [e for e in exporter.events if isinstance(e, ShardSaturated)]
        assert saturated
        assert all(e.rerouted_to == "" for e in saturated)

    def test_routed_events_cover_admitted_jobs(self):
        plane = ShardedControlPlane(make_shards(2, seed=0), placement="least_loaded")
        plane.register_tenant(TenantSpec("t"))
        exporter = InMemoryExporter()
        with use_tracing(exporter):
            jobs = [
                plane.submit(hpclab, uniform_dataset(1, 64 * MB), "t", name=f"j{i}")
                for i in range(6)
            ]
        routed = [e for e in exporter.events if isinstance(e, JobRouted)]
        assert len(routed) == len(jobs)
        assert {e.shard for e in routed} <= {s.name for s in plane.shards}
        assert all(e.policy == "least_loaded" for e in routed)


class TestShardLocalScoping:
    def test_breaker_opens_on_one_shard_only(self):
        shards = make_shards(2, seed=0, max_active=2)
        plane = ShardedControlPlane(
            shards,
            ControlPolicy(max_queue=8, breaker_threshold=2, preemption=False),
            placement="by_tenant",
            rebalance=False,
        )
        plane.register_tenant(TenantSpec("t"))
        home = plane.router.place("t", "hpclab")
        other = next(s for s in shards if s is not home)
        # Fail enough jobs on the home shard to trip its breaker.
        for i in range(2):
            job = plane.submit(hpclab, uniform_dataset(1, 10 * GB), "t", name=f"f{i}")
            home.service.crash_job(job)
        assert home.plane.breaker_state(home.localize(hpclab)) is BreakerState.OPEN
        assert other.plane.breaker_state(other.localize(hpclab)) is BreakerState.CLOSED
        job = plane.submit(hpclab, uniform_dataset(1, 64 * MB), "t", name="after")
        assert job.state is JobState.REJECTED
        assert job.rejection_reason == SHED_BREAKER

    def test_breaker_refusal_reroutes_when_rebalancing(self):
        shards = make_shards(2, seed=0, max_active=2)
        plane = ShardedControlPlane(
            shards,
            ControlPolicy(max_queue=8, breaker_threshold=2, preemption=False),
            placement="by_tenant",
        )
        plane.register_tenant(TenantSpec("t"))
        home = plane.router.place("t", "hpclab")
        other = next(s for s in shards if s is not home)
        for i in range(2):
            job = plane.submit(hpclab, uniform_dataset(1, 10 * GB), "t", name=f"f{i}")
            home.service.crash_job(job)
        job = plane.submit(hpclab, uniform_dataset(1, 64 * MB), "t", name="after")
        assert job.state is not JobState.REJECTED
        assert any(j is job for j in other.service.jobs)

    def test_quota_stays_global_across_shards(self):
        plane = ShardedControlPlane(make_shards(4, seed=0), placement="least_loaded")
        plane.register_tenant(TenantSpec("capped", quota_rate=0.01, quota_burst=2))
        jobs = [
            plane.submit(hpclab, uniform_dataset(1, 64 * MB), "capped", name=f"j{i}")
            for i in range(8)
        ]
        shed = [j for j in jobs if j.state is JobState.REJECTED]
        assert len(shed) == 6  # burst of 2, zero refill at t=0
        assert all(j.rejection_reason == SHED_QUOTA for j in shed)
        # Sub-planes hold the unlimited replica, not the real quota.
        for shard in plane.shards:
            assert shard.plane._tenants["capped"].spec.quota_rate == math.inf


class TestMakeShards:
    def test_shards_are_fully_independent(self):
        shards = make_shards(3, seed=5)
        assert len({id(s.engine) for s in shards}) == 3
        assert len({id(s.network) for s in shards}) == 3
        assert len({id(s.service) for s in shards}) == 3
        assert [s.name for s in shards] == ["shard0", "shard1", "shard2"]
        assert shards[0].service.seed == 5  # parity: shard 0 keeps the base seed
        assert len({s.service.seed for s in shards}) == 3

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            make_shards(0)
        with pytest.raises(ValueError):
            ShardedControlPlane([])

    def test_distinct_testbeds_route_independently(self):
        plane = ShardedControlPlane(make_shards(4, seed=0), placement="by_testbed")
        plane.register_tenant(TenantSpec("t"))
        a = plane.submit(hpclab, uniform_dataset(1, 64 * MB), "t", name="a")
        b = plane.submit(campus_cluster, uniform_dataset(1, 64 * MB), "t", name="b")
        shard_of = {
            job.name: shard.name
            for shard in plane.shards
            for job in shard.service.jobs
        }
        assert shard_of["a"] == _to_name(plane, "HPCLab")
        assert shard_of["b"] == _to_name(plane, "Campus Cluster")
        assert a.state is not JobState.REJECTED
        assert b.state is not JobState.REJECTED


def _to_name(plane, testbed_name: str) -> str:
    return plane.shards[_stable_index(testbed_name, len(plane.shards))].name
