"""Property-based churn across shards: no job lost, none double-counted.

Hypothesis drives random interleavings of submit / cancel / crash /
time-advance against a small multi-shard plane (tiny queues, single
slots, rebalance on), then drains.  Whatever the schedule:

* every submitted job is registered on **exactly one** shard — routing
  (including rebalance-on-shed and the quota path) never drops a job
  on the floor and never registers it twice;
* after the drain, every job is in exactly one terminal state, and the
  per-state counts partition the submission count;
* every REJECTED job carries a typed reason from the closed
  vocabulary;
* the plane's aggregate ``depth`` always equals the sum of its
  sub-planes' queues (checked after every operation).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.service import (  # noqa: E402
    ControlPolicy,
    JobState,
    Priority,
    ShardedControlPlane,
    TenantSpec,
    make_shards,
)
from repro.service.control import (  # noqa: E402
    SHED_BREAKER,
    SHED_DEGRADED,
    SHED_QUEUE_FULL,
    SHED_QUOTA,
)
from repro.testbeds.presets import hpclab  # noqa: E402
from repro.transfer.dataset import uniform_dataset  # noqa: E402
from repro.units import MB  # noqa: E402

REASONS = {SHED_QUOTA, SHED_QUEUE_FULL, SHED_DEGRADED, SHED_BREAKER}

#: (op, arg) pairs; args index into tenants / live jobs deterministically.
OPS = st.lists(
    st.tuples(
        st.sampled_from(["submit", "cancel", "crash", "advance"]),
        st.integers(min_value=0, max_value=5),
    ),
    max_size=30,
)


def make_rig(n_shards: int):
    shards = make_shards(n_shards, seed=0, max_active=1)
    plane = ShardedControlPlane(
        shards,
        ControlPolicy(max_queue=3, degrade_at=0.5, breaker_threshold=2, preemption=False),
        placement="by_tenant",
    )
    plane.register_tenant(TenantSpec("scav", priority=Priority.BEST_EFFORT))
    plane.register_tenant(TenantSpec("norm", quota_rate=0.5, quota_burst=3))
    plane.register_tenant(TenantSpec("gold", weight=2.0, priority=Priority.HIGH))
    return plane


def check_accounting(plane, submitted):
    assert plane.depth == sum(s.plane.depth for s in plane.shards)
    # Exactly-once registration: each submitted job object lives in
    # exactly one shard's service (identity, not name, so a duplicate
    # registration could not hide behind equal names).
    for job in submitted:
        owners = [
            shard.name
            for shard in plane.shards
            if any(j is job for j in shard.service.jobs)
        ]
        assert len(owners) == 1, f"{job.name} registered on {owners}"


@settings(deadline=None, max_examples=20)
@given(n_shards=st.sampled_from([2, 3]), ops=OPS)
def test_churn_never_loses_or_double_counts_jobs(n_shards, ops):
    plane = make_rig(n_shards)
    tenants = ["scav", "norm", "gold"]
    submitted = []
    for op, arg in ops:
        if op == "submit":
            submitted.append(
                plane.submit(
                    hpclab,
                    uniform_dataset(1 + arg % 3, 50 * MB),
                    tenants[arg % 3],
                    name=f"j{len(submitted)}",
                )
            )
        elif op == "cancel":
            live = [j for j in submitted if not j.state.is_terminal]
            if live:
                victim = live[arg % len(live)]
                owner = next(
                    s for s in plane.shards if any(j is victim for j in s.service.jobs)
                )
                owner.service.cancel(victim)
        elif op == "crash":
            running = [j for s in plane.shards for j in s.service.running()]
            if running:
                victim = running[arg % len(running)]
                owner = next(
                    s for s in plane.shards if any(j is victim for j in s.service.jobs)
                )
                owner.service.crash_job(victim)
        else:  # advance
            plane.run_until(plane.now + 0.5 * (1 + arg))
        check_accounting(plane, submitted)
    plane.drain(plane.now + 1800.0, 30.0)
    assert plane.depth == 0
    assert all(not s.service.running() for s in plane.shards)
    check_accounting(plane, submitted)
    # Terminal partition: each job in exactly one terminal state.
    by_state = {state: 0 for state in JobState}
    for job in submitted:
        assert job.state.is_terminal, f"{job.name} stuck in {job.state}"
        by_state[job.state] += 1
        if job.state is JobState.REJECTED:
            assert job.rejection_reason in REASONS
    assert sum(by_state[s] for s in JobState if s.is_terminal) == len(submitted)
