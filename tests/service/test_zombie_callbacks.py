"""Zombie-callback regressions: timers pending at job end must be inert.

The service arms three kinds of deferred work per job — retry timers
(``schedule_in``), the no-progress watchdog (``schedule_every``), and
the agent's decision tick.  Each can still be sitting in the engine's
event heap when the job is cancelled, crashes, finishes, or is
preempted; a stale firing must never resurrect work, double-deliver a
file, or kill a worker of a job that already sealed its report.
"""

from __future__ import annotations

from repro.faults import FaultInjector, FaultPlan, JobCrash, WorkerCrash
from repro.service import (
    ControlPlane,
    FalconService,
    JobState,
    Priority,
    RetryPolicy,
    TenantSpec,
)
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngStreams
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import GB, MB


def make_rig(policy=None, seed=0, max_active=4):
    engine = SimulationEngine(dt=0.1)
    net = FluidTransferNetwork(engine)
    service = FalconService(
        engine=engine, network=net, max_active=max_active, seed=seed, fault_policy=policy
    )
    return engine, net, service


def slow_retry_policy(**kw):
    """A retry policy whose backoff leaves a long-pending timer."""
    return RetryPolicy(backoff_base=30.0, backoff_jitter=0.0, **kw)


class TestPendingRetryTimers:
    def arm_crash(self, engine, net, service, job, at=5.0):
        plan = FaultPlan(events=(WorkerCrash(at=at, session=job.name, worker=0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0), service=service).arm()

    def test_retry_inert_after_cancel(self):
        engine, net, service = make_rig(policy=slow_retry_policy())
        job = service.submit(hpclab(), uniform_dataset(40, 1 * GB))
        self.arm_crash(engine, net, service, job)
        engine.run_until(6.0)
        assert job.retries == 1  # the 30 s timer is now pending
        service.cancel(job)
        report = job.report
        assert job.state is JobState.CANCELLED
        assert net.sessions == []
        engine.run_until(120.0)  # timer fires into a cancelled job
        assert job.state is JobState.CANCELLED
        assert job.report is report  # nothing re-opened the job
        assert net.sessions == []  # ...and nothing re-attached work

    def test_retry_inert_after_failure(self):
        # The job dies (no restarts left) while a file retry is pending;
        # the late requeue must not push work into the sealed queue.
        engine, net, service = make_rig(policy=slow_retry_policy(max_restarts=0))
        job = service.submit(hpclab(), uniform_dataset(40, 1 * GB))
        self.arm_crash(engine, net, service, job)
        plan = FaultPlan(events=(JobCrash(at=8.0),))
        FaultInjector(engine, net, plan, streams=RngStreams(1), service=service).arm()
        engine.run_until(9.0)
        assert job.state is JobState.FAILED
        files_at_failure = job.report.files
        engine.run_until(120.0)
        assert job.state is JobState.FAILED
        assert job.report.files == files_at_failure

    def test_retry_survives_job_restart_exactly_once(self):
        # The file queue object outlives the crashed incarnation, so a
        # pending retry must land in the replacement session and the
        # file still moves exactly once.
        engine, net, service = make_rig(policy=slow_retry_policy(max_restarts=1))
        job = service.submit(hpclab(), uniform_dataset(40, 1 * GB))
        self.arm_crash(engine, net, service, job)
        plan = FaultPlan(events=(JobCrash(at=8.0),))
        FaultInjector(engine, net, plan, streams=RngStreams(1), service=service).arm()
        engine.run_until(300.0)
        assert job.state is JobState.COMPLETED
        assert job.report.restarts == 1
        assert job.report.retries == 1
        assert job.report.files == 40

    def test_retry_lands_in_stashed_queue_across_preemption(self):
        # Preempted is QUEUED, not terminal: a retry scheduled before
        # the preemption must still deliver its file after resume.
        engine, net, service = make_rig(policy=slow_retry_policy(), max_active=1)
        plane = ControlPlane(service)
        plane.register_tenant(TenantSpec("scav", priority=Priority.BEST_EFFORT))
        plane.register_tenant(TenantSpec("gold", priority=Priority.HIGH))
        tb = hpclab()
        victim = plane.submit(tb, uniform_dataset(40, 200 * MB), "scav")
        self.arm_crash(engine, net, service, victim, at=2.0)
        engine.run_until(3.0)
        assert victim.retries == 1
        vip = plane.submit(tb, uniform_dataset(4, 200 * MB), "gold")
        assert victim.state is JobState.QUEUED
        assert vip.state is JobState.RUNNING
        engine.run_until(400.0)
        assert victim.state is JobState.COMPLETED
        assert victim.report.files == 40  # retried file moved exactly once


class TestWatchdogLifecycle:
    def test_watchdog_token_retires_after_cancel(self):
        policy = RetryPolicy(watchdog_interval=2.0, stall_timeout=4.0)
        engine, net, service = make_rig(policy=policy)
        job = service.submit(hpclab(), uniform_dataset(10, 1 * GB))
        assert "watchdog" in job._extras
        engine.run_until(1.0)
        service.cancel(job)
        assert "watchdog" not in job._extras
        engine.run_until(60.0)  # pending ticks fire and retire silently
        assert job.state is JobState.CANCELLED
        assert not any(kind == "watchdog-kill" for _, kind, _ in job.events)

    def test_watchdog_token_retires_after_completion(self):
        policy = RetryPolicy(watchdog_interval=2.0)
        engine, net, service = make_rig(policy=policy)
        job = service.submit(hpclab(), uniform_dataset(5, 100 * MB))
        engine.run_until(120.0)
        assert job.state is JobState.COMPLETED
        assert "watchdog" not in job._extras

    def test_one_watchdog_across_restart(self):
        # A restart reuses the incarnation-following watchdog instead of
        # arming a second one; the token installed before the crash is
        # still the live one after it.
        policy = RetryPolicy(watchdog_interval=2.0, max_restarts=1)
        engine, net, service = make_rig(policy=policy)
        job = service.submit(hpclab(), uniform_dataset(40, 1 * GB))
        token = job._extras["watchdog"]
        plan = FaultPlan(events=(JobCrash(at=6.0),))
        FaultInjector(engine, net, plan, streams=RngStreams(0), service=service).arm()
        engine.run_until(10.0)
        assert job.restarts == 1
        assert job._extras["watchdog"] is token

    def test_fresh_watchdog_after_preempt_resume(self):
        policy = RetryPolicy(watchdog_interval=2.0)
        engine, net, service = make_rig(policy=policy, max_active=1)
        plane = ControlPlane(service)
        plane.register_tenant(TenantSpec("scav", priority=Priority.BEST_EFFORT))
        plane.register_tenant(TenantSpec("gold", priority=Priority.HIGH))
        tb = hpclab()
        victim = plane.submit(tb, uniform_dataset(10, 500 * MB), "scav")
        stale = victim._extras["watchdog"]
        vip = plane.submit(tb, uniform_dataset(4, 500 * MB), "gold")
        assert victim.state is JobState.QUEUED
        assert "watchdog" not in victim._extras  # suspended: no live timer
        engine.run_until(400.0)
        assert vip.state is JobState.COMPLETED
        assert victim.state is JobState.COMPLETED
        # The resume armed a fresh token (never two live at once), and
        # the healthy run saw no spurious kills from the stale timer.
        assert not any(kind == "watchdog-kill" for _, kind, _ in victim.events)
        assert stale is not None


class TestAgentTickLifecycle:
    def test_agent_ticks_stop_driving_finished_sessions(self):
        # The decision tick holds the session, not the job; after the
        # job ends, its session is torn down and out of the network, so
        # a live tick must not resize or re-add it.
        engine, net, service = make_rig(policy=None)
        job = service.submit(hpclab(), uniform_dataset(5, 100 * MB))
        engine.run_until(120.0)
        assert job.state is JobState.COMPLETED
        session = job._extras["session"]
        workers = session.params.concurrency
        engine.run_until(240.0)
        assert net.sessions == []
        assert session.params.concurrency == workers

    def test_cancelled_job_session_stays_torn_down(self):
        engine, net, service = make_rig(policy=None)
        job = service.submit(hpclab(), uniform_dataset(20, 1 * GB))
        engine.run_until(5.0)
        service.cancel(job)
        session = job._extras["session"]
        report = job.report
        workers = session.params.concurrency
        assert session.finished_at is not None
        engine.run_until(120.0)
        assert net.sessions == []
        assert job.report is report  # nothing re-sealed the job
        assert session.params.concurrency == workers  # no zombie resize
