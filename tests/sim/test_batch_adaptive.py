"""BatchStore adaptive primitives: transition bounds, jumps, blend cache.

Unit-level checks on the pieces ISSUE 9 added to the batched store,
with synthetic targets/losses so the arithmetic is verifiable by hand:

* :meth:`BatchStore.next_transition` — the completion bound uses the
  *allocated* rate times the loss goodput factor (conservative: actual
  rates ramp up from below), the wake-up bound is the earliest
  stall+gap expiry, and a store with nothing in flight is unbounded;
* :meth:`BatchStore.jump` — the closed-form n-step advance matches n
  iterated :meth:`BatchStore.step` calls to float round-off under the
  planner's preconditions (frozen equilibrium, no worker changing
  phase inside the window), including the snap-down branch and workers
  idle for the whole span;
* the dt-keyed TCP blend cache — variable spans produced by adaptive
  stepping get distinct, correct entries (a blend for the wrong dt
  would silently skew every ramp), and overflow eviction recomputes
  rather than serving stale values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.batch import BatchStore
from repro.testbeds.presets import emulab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.session import TransferParams
from repro.units import MB, Mbps


def make_store(n_sessions: int = 2, concurrency: int = 4) -> BatchStore:
    """Sessions on private emulab testbeds adopted into one store."""
    sessions = []
    for i in range(n_sessions):
        sessions.append(
            emulab().new_session(
                uniform_dataset(50, 100 * MB),
                name=f"s{i}",
                params=TransferParams(concurrency=concurrency, parallelism=2),
                repeat=True,
            )
        )
    offsets = np.arange(n_sessions + 1, dtype=np.intp) * concurrency
    return BatchStore(sessions, offsets)


def prime(store: BatchStore, rate: float = 0.0) -> None:
    """Put every worker mid-file with no pending stall or spawn gap."""
    for s in store.sessions:
        s.assign_files()
    store.gap_left[:] = 0.0
    store.stall_left[:] = 0.0
    store.file_done[:] = 0.0
    store.rates[:] = rate


class TestNextTransition:
    def test_completion_bound_uses_allocated_goodput(self):
        store = make_store()
        prime(store)
        store.file_size[:] = 10 * MB
        store.file_done[:] = 0.0
        store.file_done[3] = 9 * MB  # nearest completion
        targets = np.full(store.total, 80 * Mbps)
        losses = np.array([0.25, 0.0])
        t = store.next_transition(5.0, targets, losses)
        # Worker 3 sits in session 0 (loss 0.25): 1 MB left at
        # 80 Mbps * 0.75 goodput.
        expected = (1 * MB) / (80 * Mbps * 0.75 / 8.0)
        assert t == pytest.approx(5.0 + expected, rel=1e-12)

    def test_wakeup_bound_is_earliest_idle_expiry(self):
        store = make_store()
        prime(store)
        store.file_size[:] = 1e18  # completions far away
        store.stall_left[2] = 0.7
        store.gap_left[2] = 0.1
        store.gap_left[6] = 0.3  # the earliest wake-up
        targets = np.full(store.total, 80 * Mbps)
        t = store.next_transition(0.0, targets, np.zeros(2))
        assert t == pytest.approx(0.3, rel=1e-12)

    def test_unbounded_when_nothing_in_flight(self):
        store = make_store()
        store.has_file[:] = False
        targets = np.full(store.total, 80 * Mbps)
        assert store.next_transition(0.0, targets, np.zeros(2)) == np.inf

    def test_zero_rate_workers_do_not_bound(self):
        store = make_store()
        prime(store)
        store.file_size[:] = 10 * MB
        assert store.next_transition(0.0, np.zeros(store.total), np.zeros(2)) == np.inf


class TestJumpClosedForm:
    H = 0.1
    N = 40

    def scenario(self) -> tuple[BatchStore, np.ndarray, np.ndarray]:
        store = make_store()
        prime(store)
        store.file_size[:] = 1e15  # nobody completes inside the window
        targets = np.full(store.total, 50 * Mbps)
        # Mixed ramp phases: one worker snapping down, one already
        # converged, the rest ramping up from zero.
        store.rates[0] = 100 * Mbps
        store.rates[1] = 50 * Mbps
        # Workers idle for the whole window (planner guarantees no
        # mid-window wake-ups, so idle budgets must cover the span).
        span = self.H * self.N
        store.stall_left[2] = span + 1.0
        store.gap_left[5] = span + 2.0
        losses = np.array([0.1, 0.0])
        return store, targets, losses

    @staticmethod
    def snapshot(store: BatchStore) -> dict:
        return {
            "rates": store.rates.copy(),
            "file_done": store.file_done.copy(),
            "gap_left": store.gap_left.copy(),
            "stall_left": store.stall_left.copy(),
            "good": [s.total_good_bytes for s in store.sessions],
            "stalled": [s.stalled_seconds for s in store.sessions],
            "elapsed": [s.monitor.elapsed for s in store.sessions],
        }

    def test_jump_matches_iterated_steps(self):
        iterated, targets, losses = self.scenario()
        for i in range(self.N):
            iterated.step(self.H, targets, losses, i * self.H)
        jumped, targets, losses = self.scenario()
        jumped.jump(self.H, self.N, targets, losses, 0.0)

        want = self.snapshot(iterated)
        got = self.snapshot(jumped)
        for key in want:
            np.testing.assert_allclose(got[key], want[key], rtol=1e-12, err_msg=key)

    def test_snapped_down_worker_lands_exactly_on_target(self):
        store, targets, losses = self.scenario()
        store.jump(self.H, self.N, targets, losses, 0.0)
        # Instant decrease: the oracle puts rates[0] on target in the
        # first step and it never moves again, so the closed form must
        # reproduce it exactly, not approximately.
        assert store.rates[0] == targets[0]

    def test_idle_workers_move_no_bytes(self):
        store, targets, losses = self.scenario()
        done_before = store.file_done[[2, 5]].copy()
        store.jump(self.H, self.N, targets, losses, 0.0)
        assert (store.file_done[[2, 5]] == done_before).all()
        span = self.H * self.N
        assert store.stall_left[2] == pytest.approx(1.0)
        assert store.gap_left[5] == pytest.approx(2.0)
        assert store.sessions[0].stalled_seconds == pytest.approx(span)


class TestBlendCache:
    def test_variable_spans_get_distinct_correct_entries(self):
        store = make_store()
        for dt in (0.1, 0.25, 0.0625):
            per_worker = store._blend_for(dt)
            expected = np.array(
                [1.0 - float(np.exp(-dt / tau)) for tau in store._tau]
            )[store._expand]
            np.testing.assert_array_equal(per_worker, expected, err_msg=f"dt={dt}")
        assert len(store._blend_cache) == 3

    def test_overflow_evicts_and_recomputes(self):
        store = make_store()
        baseline = store._blend_for(0.1).copy()
        for i in range(store._BLEND_CACHE_MAX + 5):
            store._blend_for(0.1 + (i + 1) * 1e-6)
        assert len(store._blend_cache) <= store._BLEND_CACHE_MAX
        np.testing.assert_array_equal(store._blend_for(0.1), baseline)

    def test_expand_gather_matches_repeat(self):
        store = make_store(n_sessions=3, concurrency=5)
        v = np.linspace(1.0, 3.0, 3)
        np.testing.assert_array_equal(v[store._expand], np.repeat(v, store.counts))
