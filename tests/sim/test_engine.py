"""Simulation engine tests: event ordering, fluid stepping, periodic tasks."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = SimulationEngine(dt=0.1)
        fired = []
        eng.schedule_at(2.0, lambda: fired.append("b"))
        eng.schedule_at(1.0, lambda: fired.append("a"))
        eng.schedule_at(3.0, lambda: fired.append("c"))
        eng.run_until(5.0)
        assert fired == ["a", "b", "c"]

    def test_same_time_insertion_order(self):
        eng = SimulationEngine(dt=0.1)
        fired = []
        for tag in "abc":
            eng.schedule_at(1.0, lambda t=tag: fired.append(t))
        eng.run_until(2.0)
        assert fired == ["a", "b", "c"]

    def test_schedule_in_relative(self):
        eng = SimulationEngine(dt=0.1)
        seen = []
        eng.schedule_in(0.5, lambda: seen.append(eng.now))
        eng.run_until(1.0)
        assert seen == [pytest.approx(0.5)]

    def test_cannot_schedule_in_past(self):
        eng = SimulationEngine(dt=0.1)
        eng.run_until(1.0)
        with pytest.raises(ValueError):
            eng.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        eng = SimulationEngine(dt=0.1)
        with pytest.raises(ValueError):
            eng.schedule_in(-1.0, lambda: None)

    def test_cancelled_event_skipped(self):
        eng = SimulationEngine(dt=0.1)
        fired = []
        event = eng.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        eng.run_until(2.0)
        assert fired == []

    def test_event_scheduling_event(self):
        eng = SimulationEngine(dt=0.1)
        fired = []
        eng.schedule_at(1.0, lambda: eng.schedule_at(1.5, lambda: fired.append("n")))
        eng.run_until(2.0)
        assert fired == ["n"]

    def test_now_advances_to_end(self):
        eng = SimulationEngine(dt=0.1)
        eng.run_until(3.7)
        assert eng.now == pytest.approx(3.7)

    def test_run_for(self):
        eng = SimulationEngine(dt=0.1)
        eng.run_for(1.0)
        eng.run_for(1.5)
        assert eng.now == pytest.approx(2.5)

    def test_run_until_past_rejected(self):
        eng = SimulationEngine(dt=0.1)
        eng.run_until(2.0)
        with pytest.raises(ValueError):
            eng.run_until(1.0)


class TestFluidIntegration:
    def test_fluid_step_called_with_dt(self):
        steps = []
        eng = SimulationEngine(dt=0.25, fluid_step=lambda now, dt: steps.append((now, dt)))
        eng.run_until(1.0)
        assert len(steps) == 4
        assert all(dt == pytest.approx(0.25) for _, dt in steps)

    def test_fluid_time_covers_span(self):
        total = []
        eng = SimulationEngine(dt=0.3, fluid_step=lambda now, dt: total.append(dt))
        eng.run_until(1.0)
        assert sum(total) == pytest.approx(1.0)

    def test_step_shortened_before_event(self):
        """State at an event timestamp must be integrated exactly."""
        covered = []
        eng = SimulationEngine(dt=1.0, fluid_step=lambda now, dt: covered.append((now, dt)))
        boundary = []
        eng.schedule_at(0.5, lambda: boundary.append(sum(dt for _, dt in covered)))
        eng.run_until(1.0)
        assert boundary == [pytest.approx(0.5)]

    def test_event_during_fluid_advance(self):
        eng = SimulationEngine(dt=0.1)
        marks = []

        def fluid(now, dt):
            if not marks and now >= 0.35:
                eng.schedule_in(0.0, lambda: marks.append(eng.now))

        eng.fluid_step = fluid
        eng.run_until(1.0)
        assert marks and marks[0] < 1.0

    def test_fluid_scheduled_event_fires_on_time(self):
        """An event scheduled *by* the fluid callback inside the current
        span must fire at its timestamp, not on the old step grid (the
        pre-clamp behaviour fired it up to one full step late)."""
        eng = SimulationEngine(dt=0.1)
        fired = []
        scheduled = []

        def fluid(now, dt):
            if not scheduled:
                scheduled.append(True)
                eng.schedule_at(0.25, lambda: fired.append(eng.now))

        eng.fluid_step = fluid
        eng.run_until(1.0)
        assert fired == [pytest.approx(0.25)]

    def test_fluid_steps_shorten_toward_scheduled_event(self):
        """Integration lands exactly on a mid-span event boundary."""
        eng = SimulationEngine(dt=0.1)
        covered = []

        def fluid(now, dt):
            covered.append((now, dt))
            if len(covered) == 1:
                eng.schedule_at(0.25, lambda: None)

        eng.fluid_step = fluid
        eng.run_until(1.0)
        boundaries = [now + dt for now, dt in covered]
        assert any(b == pytest.approx(0.25, abs=1e-9) for b in boundaries)
        assert sum(dt for _, dt in covered) == pytest.approx(1.0)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            SimulationEngine(dt=0.0)


class TestAdaptiveStepping:
    """Opt-in event-driven jumps: planner clamping and fallbacks."""

    @staticmethod
    def instrumented(adaptive: bool, plan) -> tuple[SimulationEngine, list]:
        eng = SimulationEngine(dt=0.1, adaptive=adaptive)
        calls: list[tuple] = []
        eng.fluid_step = lambda now, dt: calls.append(("step", now, dt))
        eng.fluid_jump = lambda now, h, n: calls.append(("jump", now, h, n))
        eng.jump_planner = plan
        return eng, calls

    def test_planner_span_taken_as_one_jump(self):
        eng, calls = self.instrumented(True, lambda now, h, n: n)
        eng.run_until(1.0)
        assert calls == [("jump", 0.0, pytest.approx(0.1), 10)]
        assert eng.now == pytest.approx(1.0)

    def test_jump_never_crosses_scheduled_event(self):
        eng, calls = self.instrumented(True, lambda now, h, n: 1000)
        fired = []
        eng.schedule_at(0.35, lambda: fired.append(eng.now))
        eng.run_until(1.0)
        assert fired == [pytest.approx(0.35)]
        for kind, now, h, *rest in calls:
            span = h * rest[0] if kind == "jump" else h
            assert now + span <= 0.35 + 1e-9 or now >= 0.35 - 1e-9
        assert sum((h * rest[0] if k == "jump" else h) for k, _, h, *rest in calls) == (
            pytest.approx(1.0)
        )

    def test_planner_result_clamped_to_at_least_one_step(self):
        eng, calls = self.instrumented(True, lambda now, h, n: -3)
        eng.run_until(0.3)
        assert [c[0] for c in calls] == ["step"] * 3

    def test_single_step_spans_use_fluid_step(self):
        # A planner answer of 1 is a normal step, not a one-step jump.
        eng, calls = self.instrumented(True, lambda now, h, n: 1)
        eng.run_until(0.5)
        assert [c[0] for c in calls] == ["step"] * 5

    def test_without_planner_falls_back_to_fixed_grid(self):
        eng = SimulationEngine(dt=0.1, adaptive=True)
        calls = []
        eng.fluid_step = lambda now, dt: calls.append(dt)
        eng.run_until(1.0)
        assert len(calls) == 10

    def test_adaptive_false_ignores_registered_planner(self):
        eng, calls = self.instrumented(False, lambda now, h, n: n)
        eng.run_until(1.0)
        assert [c[0] for c in calls] == ["step"] * 10

    def test_stop_interrupts_run(self):
        eng = SimulationEngine(dt=0.1)
        eng.schedule_at(1.0, eng.stop)
        eng.run_until(10.0)
        assert eng.now < 10.0

    def test_pending_stop_between_runs_is_honored(self):
        # A stop() requested after run_until returned (e.g. by a service
        # callback reacting to the finished run) must not be silently
        # discarded by the next run_until.
        eng = SimulationEngine(dt=0.1)
        eng.run_until(1.0)
        eng.stop()
        eng.run_until(5.0)
        assert eng.now == 1.0  # returned immediately, clock untouched

    def test_pending_stop_is_consumed_by_one_run(self):
        eng = SimulationEngine(dt=0.1)
        eng.stop()
        eng.run_until(2.0)
        assert eng.now == 0.0
        eng.run_until(2.0)  # the stop was consumed; this run proceeds
        assert eng.now == 2.0

    def test_mid_run_stop_does_not_leak_into_next_run(self):
        # A stop that interrupted one run must not also abort the next
        # (stop/resume is how the service pauses the engine).
        eng = SimulationEngine(dt=0.1)
        eng.schedule_at(1.0, eng.stop)
        eng.run_until(10.0)
        stopped_at = eng.now
        eng.run_until(10.0)
        assert stopped_at < 10.0
        assert eng.now == 10.0


class TestPeriodic:
    def test_schedule_every_fires_repeatedly(self):
        eng = SimulationEngine(dt=0.1)
        ticks = []
        eng.schedule_every(1.0, lambda: ticks.append(eng.now))
        eng.run_until(5.5)
        assert len(ticks) == 5
        assert ticks[0] == pytest.approx(1.0)
        assert ticks[-1] == pytest.approx(5.0)

    def test_schedule_every_stops_on_stopiteration(self):
        eng = SimulationEngine(dt=0.1)
        ticks = []

        def tick():
            ticks.append(eng.now)
            if len(ticks) >= 3:
                raise StopIteration

        eng.schedule_every(1.0, tick)
        eng.run_until(10.0)
        assert len(ticks) == 3

    def test_schedule_every_custom_start(self):
        eng = SimulationEngine(dt=0.1)
        ticks = []
        eng.schedule_every(1.0, lambda: ticks.append(eng.now), start=2.5)
        eng.run_until(5.0)
        assert ticks[0] == pytest.approx(2.5)

    def test_invalid_interval(self):
        eng = SimulationEngine(dt=0.1)
        with pytest.raises(ValueError):
            eng.schedule_every(0.0, lambda: None)
