"""Max-min fairness tests, including the hypothesis invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sim.fairshare import (
    bottleneck_utilization,
    max_min_fair_share,
    weighted_max_min_fair_share,
)

demand_arrays = arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=40),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)


class TestMaxMinBasics:
    def test_under_capacity_gets_demand(self):
        alloc = max_min_fair_share(np.array([1.0, 2.0, 3.0]), capacity=10.0)
        assert np.allclose(alloc, [1, 2, 3])

    def test_equal_demands_split_evenly(self):
        alloc = max_min_fair_share(np.array([5.0, 5.0, 5.0, 5.0]), capacity=10.0)
        assert np.allclose(alloc, 2.5)

    def test_small_demand_fully_served(self):
        alloc = max_min_fair_share(np.array([1.0, 100.0, 100.0]), capacity=11.0)
        assert alloc[0] == pytest.approx(1.0)
        assert alloc[1] == pytest.approx(5.0)
        assert alloc[2] == pytest.approx(5.0)

    def test_textbook_example(self):
        # Demands 2, 2.6, 4, 5 with capacity 10 -> 2, 2.6, 2.7, 2.7.
        alloc = max_min_fair_share(np.array([2.0, 2.6, 4.0, 5.0]), capacity=10.0)
        assert np.allclose(alloc, [2.0, 2.6, 2.7, 2.7])

    def test_zero_capacity(self):
        alloc = max_min_fair_share(np.array([1.0, 2.0]), capacity=0.0)
        assert np.allclose(alloc, 0.0)

    def test_zero_demands(self):
        alloc = max_min_fair_share(np.zeros(3), capacity=5.0)
        assert np.allclose(alloc, 0.0)

    def test_empty(self):
        assert max_min_fair_share(np.zeros(0), capacity=5.0).size == 0

    def test_single_flow(self):
        assert max_min_fair_share(np.array([7.0]), capacity=5.0)[0] == pytest.approx(5.0)

    def test_order_invariance(self):
        d = np.array([3.0, 1.0, 7.0, 2.0])
        alloc = max_min_fair_share(d, capacity=8.0)
        perm = np.array([2, 0, 3, 1])
        alloc_perm = max_min_fair_share(d[perm], capacity=8.0)
        assert np.allclose(alloc[perm], alloc_perm)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            max_min_fair_share(np.array([-1.0]), capacity=1.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            max_min_fair_share(np.array([1.0]), capacity=-1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            max_min_fair_share(np.ones((2, 2)), capacity=1.0)


class TestMaxMinProperties:
    @given(demands=demand_arrays, capacity=st.floats(min_value=0.0, max_value=1e7))
    @settings(max_examples=150)
    def test_feasibility(self, demands, capacity):
        alloc = max_min_fair_share(demands, capacity)
        assert np.all(alloc >= -1e-9)
        assert np.all(alloc <= demands + 1e-6 * np.maximum(demands, 1.0))
        assert alloc.sum() <= capacity + 1e-6 * max(capacity, 1.0) or demands.sum() <= capacity

    @given(demands=demand_arrays, capacity=st.floats(min_value=1.0, max_value=1e7))
    @settings(max_examples=150)
    def test_work_conserving(self, demands, capacity):
        # Either all demand is met or capacity is exhausted.
        alloc = max_min_fair_share(demands, capacity)
        total = alloc.sum()
        slack_ok = abs(total - demands.sum()) <= 1e-6 * max(demands.sum(), 1.0)
        full_ok = abs(total - capacity) <= 1e-6 * max(capacity, 1.0)
        assert slack_ok or full_ok

    @given(demands=demand_arrays, capacity=st.floats(min_value=1.0, max_value=1e7))
    @settings(max_examples=150)
    def test_max_min_property(self, demands, capacity):
        # No satisfied flow exceeds the level of any unsatisfied flow.
        alloc = max_min_fair_share(demands, capacity)
        unsat = alloc < demands - 1e-6 * np.maximum(demands, 1.0)
        if unsat.any():
            fair_level = alloc[unsat].min()
            assert np.all(alloc <= fair_level + 1e-6 * max(fair_level, 1.0))

    @given(demands=demand_arrays)
    @settings(max_examples=80)
    def test_monotone_in_capacity(self, demands):
        lo = max_min_fair_share(demands, 10.0)
        hi = max_min_fair_share(demands, 20.0)
        assert np.all(hi >= lo - 1e-9)


class TestWeightedMaxMin:
    def test_equal_weights_match_unweighted(self):
        d = np.array([4.0, 6.0, 10.0])
        w = np.ones(3)
        assert np.allclose(
            weighted_max_min_fair_share(d, w, 12.0), max_min_fair_share(d, 12.0)
        )

    def test_weights_bias_allocation(self):
        d = np.array([100.0, 100.0])
        w = np.array([1.0, 3.0])
        alloc = weighted_max_min_fair_share(d, w, 8.0)
        assert alloc[1] == pytest.approx(3 * alloc[0])
        assert alloc.sum() == pytest.approx(8.0)

    def test_under_capacity_gets_demand(self):
        d = np.array([1.0, 2.0])
        alloc = weighted_max_min_fair_share(d, np.array([1.0, 9.0]), 100.0)
        assert np.allclose(alloc, d)

    def test_small_demand_redistribution(self):
        # Flow 0 wants little; its leftover goes to flow 1.
        d = np.array([1.0, 100.0])
        alloc = weighted_max_min_fair_share(d, np.array([1.0, 1.0]), 10.0)
        assert alloc[0] == pytest.approx(1.0)
        assert alloc[1] == pytest.approx(9.0)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            weighted_max_min_fair_share(np.array([1.0]), np.array([0.0]), 1.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_max_min_fair_share(np.array([1.0, 2.0]), np.array([1.0]), 1.0)

    @given(
        demands=demand_arrays,
        capacity=st.floats(min_value=1.0, max_value=1e7),
    )
    @settings(max_examples=80)
    def test_weighted_feasibility(self, demands, capacity):
        weights = np.full(demands.shape, 2.0)
        alloc = weighted_max_min_fair_share(demands, weights, capacity)
        assert np.all(alloc >= -1e-9)
        assert np.all(alloc <= demands + 1e-6 * np.maximum(demands, 1.0))
        assert alloc.sum() <= max(capacity, demands.sum()) + 1e-5 * max(capacity, 1.0)


class TestUtilization:
    def test_full(self):
        assert bottleneck_utilization(np.array([10.0, 10.0]), 10.0) == pytest.approx(1.0)

    def test_partial(self):
        assert bottleneck_utilization(np.array([2.0, 3.0]), 10.0) == pytest.approx(0.5)

    def test_zero_capacity(self):
        assert bottleneck_utilization(np.array([1.0]), 0.0) == 0.0
