"""Property-based tests for the max-min fair-share allocators.

Seeded-random inputs (no hypothesis dependency): hundreds of random
demand vectors per property, spanning degenerate shapes (empty, single
flow, all-zero demands, zero capacity, huge spreads) that example-based
tests tend to miss.  Every property is a line item from the functions'
documented contracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.fairshare import (
    _fair_share_unchecked,
    max_min_fair_share,
    weighted_max_min_fair_share,
)

#: Relative slack for float comparisons across ~1e9-scale rates.
RTOL = 1e-9


def random_cases(seed: int, n_cases: int = 200):
    """Yield (demands, capacity) pairs over a wide range of regimes."""
    rng = np.random.default_rng(seed)
    for _ in range(n_cases):
        n = int(rng.integers(0, 40))
        scale = 10.0 ** rng.integers(0, 10)
        demands = rng.uniform(0.0, scale, size=n)
        # Sprinkle exact zeros and duplicates — common in practice
        # (idle workers demand 0; equal workers demand equal rates).
        if n and rng.random() < 0.5:
            demands[rng.integers(0, n)] = 0.0
        if n >= 2 and rng.random() < 0.5:
            demands[rng.integers(0, n)] = demands[rng.integers(0, n)]
        # Capacity from starved to abundant.
        capacity = float(rng.uniform(0.0, 2.0) * scale * max(n, 1) / 4)
        yield demands, capacity


class TestMaxMinProperties:
    def test_allocation_bounded_by_demand_and_nonnegative(self):
        for demands, capacity in random_cases(seed=1):
            alloc = max_min_fair_share(demands, capacity)
            assert alloc.shape == demands.shape
            assert np.all(alloc >= 0.0)
            assert np.all(alloc <= demands * (1 + RTOL) + 1e-12)

    def test_capacity_conserved(self):
        """Never over-allocates; fills the pipe when demand exceeds it."""
        for demands, capacity in random_cases(seed=2):
            alloc = max_min_fair_share(demands, capacity)
            total = alloc.sum()
            assert total <= capacity * (1 + RTOL) + 1e-12
            if demands.sum() >= capacity:
                assert total == pytest.approx(capacity, rel=1e-9, abs=1e-12)

    def test_max_min_fairness(self):
        """Every unsatisfied flow gets the common fair level, and no
        satisfied flow gets more than that level."""
        for demands, capacity in random_cases(seed=3):
            alloc = max_min_fair_share(demands, capacity)
            tol = 1e-9 * max(float(demands.max(initial=0.0)), 1.0)
            unsatisfied = alloc < demands - tol
            if not unsatisfied.any():
                continue
            levels = alloc[unsatisfied]
            fair = levels.max()
            assert levels == pytest.approx(fair, rel=1e-9, abs=tol)
            assert np.all(alloc[~unsatisfied] <= fair + tol)

    def test_unchecked_variant_matches_checked(self):
        """The validation-skipping hot-path variant is the same math."""
        for demands, capacity in random_cases(seed=4):
            checked = max_min_fair_share(demands, capacity)
            unchecked = _fair_share_unchecked(demands, capacity)
            assert np.array_equal(checked, unchecked)

    def test_input_never_mutated(self):
        for demands, capacity in random_cases(seed=5, n_cases=50):
            before = demands.copy()
            max_min_fair_share(demands, capacity)
            assert np.array_equal(demands, before)


class TestWeightedMaxMinProperties:
    def cases(self, seed: int, n_cases: int = 200):
        rng = np.random.default_rng(seed)
        for demands, capacity in random_cases(seed=seed + 100, n_cases=n_cases):
            weights = rng.uniform(0.1, 10.0, size=demands.size)
            yield demands, weights, capacity

    def test_bounds_and_conservation(self):
        for demands, weights, capacity in self.cases(seed=6):
            alloc = weighted_max_min_fair_share(demands, weights, capacity)
            assert np.all(alloc >= 0.0)
            assert np.all(alloc <= demands * (1 + RTOL) + 1e-12)
            assert alloc.sum() <= capacity * (1 + RTOL) + 1e-12

    def test_unsatisfied_flows_share_proportionally_to_weight(self):
        """Normalised by weight, every unsatisfied flow sits at the same
        level — the defining property of weighted max-min."""
        for demands, weights, capacity in self.cases(seed=7):
            alloc = weighted_max_min_fair_share(demands, weights, capacity)
            tol = 1e-6 * max(float(demands.max(initial=0.0)), 1.0)
            unsatisfied = alloc < demands - tol
            if unsatisfied.sum() < 2:
                continue
            normalised = alloc[unsatisfied] / weights[unsatisfied]
            assert normalised == pytest.approx(normalised[0], rel=1e-6)

    def test_uniform_weights_reduce_to_plain_max_min(self):
        for demands, capacity in random_cases(seed=8, n_cases=100):
            weights = np.ones(demands.size)
            weighted = weighted_max_min_fair_share(demands, weights, capacity)
            plain = max_min_fair_share(demands, capacity)
            assert weighted == pytest.approx(plain, rel=1e-9, abs=1e-9)
