"""Deterministic RNG stream tests."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngStreams, _stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert _stable_hash("abc") == _stable_hash("abc")

    def test_distinguishes_names(self):
        assert _stable_hash("abc") != _stable_hash("abd")

    def test_unicode(self):
        assert isinstance(_stable_hash("naïve-ünïcode"), int)

    def test_range(self):
        assert 0 <= _stable_hash("x") < 2**63


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).get("jitter")
        b = RngStreams(7).get("jitter")
        assert np.allclose(a.random(16), b.random(16))

    def test_different_names_differ(self):
        streams = RngStreams(7)
        a = streams.get("alpha").random(16)
        b = streams.get("beta").random(16)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("x").random(16)
        b = RngStreams(2).get("x").random(16)
        assert not np.allclose(a, b)

    def test_creation_order_does_not_matter(self):
        s1 = RngStreams(3)
        s1.get("first")
        v1 = s1.get("second").random(8)

        s2 = RngStreams(3)
        v2 = s2.get("second").random(8)  # created first this time
        assert np.allclose(v1, v2)

    def test_get_returns_same_object(self):
        streams = RngStreams(0)
        assert streams.get("a") is streams.get("a")

    def test_seed_property(self):
        assert RngStreams(42).seed == 42

    def test_spawn_is_deterministic(self):
        a = RngStreams(5).spawn("child").get("s").random(8)
        b = RngStreams(5).spawn("child").get("s").random(8)
        assert np.allclose(a, b)

    def test_spawn_differs_from_parent(self):
        parent = RngStreams(5)
        child = parent.spawn("child")
        assert not np.allclose(parent.get("s").random(8), child.get("s").random(8))
