"""Storage device preset tests."""

from __future__ import annotations

import pytest

from repro.storage.device import HDD, NVME_SSD, SATA_SSD, StorageDevice
from repro.units import Gbps


class TestValidation:
    def test_rejects_zero_rates(self):
        with pytest.raises(ValueError):
            StorageDevice(read_bps=0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            StorageDevice(open_latency=-1.0)


class TestPresets:
    def test_speed_ordering(self):
        assert HDD.read_bps < SATA_SSD.read_bps < NVME_SSD.read_bps

    def test_paper_bounds(self):
        # Paper: single-file read/write < 10 Gbps on HDD, < 30 Gbps on SSD.
        assert HDD.read_bps < 10 * Gbps
        assert NVME_SSD.read_bps < 30 * Gbps

    def test_hdd_seek_latency_dominates(self):
        assert HDD.open_latency > NVME_SSD.open_latency
