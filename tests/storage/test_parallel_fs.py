"""Parallel file system model tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.parallel_fs import ParallelFileSystem, throttled_fs
from repro.units import Gbps, Mbps


def lustre() -> ParallelFileSystem:
    return ParallelFileSystem(
        name="lustre",
        per_process_read_bps=0.6 * Gbps,
        per_process_write_bps=1.5 * Gbps,
        aggregate_read_bps=6 * Gbps,
        aggregate_write_bps=12 * Gbps,
        contention=0.01,
    )


class TestValidation:
    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            ParallelFileSystem(per_process_read_bps=0.0)

    def test_rejects_negative_contention(self):
        with pytest.raises(ValueError):
            ParallelFileSystem(contention=-0.1)


class TestSaturationStructure:
    def test_read_saturation_streams(self):
        assert lustre().read_saturation_streams() == 10

    def test_write_saturation_streams(self):
        assert lustre().write_saturation_streams() == 8

    def test_effective_capacity_at_knee(self):
        fs = lustre()
        assert fs.effective_read_capacity(10) == pytest.approx(6 * Gbps)

    def test_contention_degrades_past_knee(self):
        fs = lustre()
        assert fs.effective_read_capacity(30) < fs.effective_read_capacity(10)

    def test_degradation_floor(self):
        fs = lustre()
        assert fs.effective_read_capacity(100_000) >= 0.5 * 6 * Gbps

    def test_custom_knee(self):
        fs = ParallelFileSystem(contention=0.01, contention_knee=5)
        assert fs.effective_read_capacity(5) == fs.aggregate_read_bps
        assert fs.effective_read_capacity(6) < fs.aggregate_read_bps


class TestAllocation:
    def test_single_stream_capped_at_per_process(self):
        fs = lustre()
        alloc = fs.allocate_read(np.array([10e9]))
        assert alloc[0] == pytest.approx(0.6 * Gbps)

    def test_aggregate_cap_binds(self):
        fs = lustre()
        demands = np.full(20, 0.6 * Gbps)
        alloc = fs.allocate_read(demands)
        assert alloc.sum() <= fs.effective_read_capacity(20) * (1 + 1e-9)
        assert alloc.sum() > 5.0 * Gbps

    def test_read_write_independent_limits(self):
        fs = lustre()
        one = np.array([10e9])
        assert fs.allocate_write(one)[0] == pytest.approx(1.5 * Gbps)
        assert fs.allocate_read(one)[0] == pytest.approx(0.6 * Gbps)

    def test_idle_streams_ignored_for_contention(self):
        fs = lustre()
        demands = np.array([0.6e9, 0.0, 0.0])
        alloc = fs.allocate_read(demands)
        assert alloc[0] == pytest.approx(0.6e9)
        assert np.all(alloc[1:] == 0)

    @given(
        n=st.integers(min_value=1, max_value=64),
        demand=st.floats(min_value=0.0, max_value=5e9),
    )
    @settings(max_examples=100)
    def test_allocation_feasible(self, n, demand):
        fs = lustre()
        alloc = fs.allocate_read(np.full(n, demand))
        assert np.all(alloc <= min(demand, fs.per_process_read_bps) + 1e-3)
        assert alloc.sum() <= fs.effective_read_capacity(n) + 1e-3


class TestThrottledFs:
    def test_emulab_throttle_shape(self):
        fs = throttled_fs(10 * Mbps, 400 * Mbps)
        assert fs.per_process_read_bps == 10 * Mbps
        assert fs.per_process_write_bps == 10 * Mbps
        assert fs.contention == 0.0

    def test_no_contention_degradation(self):
        fs = throttled_fs(10 * Mbps, 400 * Mbps)
        assert fs.effective_read_capacity(1000) == pytest.approx(400 * Mbps)

    def test_fig4_saturation_structure(self):
        # 10 Mbps/process, 100 Mbps of link downstream: the fs itself
        # saturates at 40 streams; the link (elsewhere) at 10.
        fs = throttled_fs(10 * Mbps, 400 * Mbps)
        assert fs.read_saturation_streams() == 40
