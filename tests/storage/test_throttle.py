"""Token-bucket throttle tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.throttle import TokenBucket


class TestBasics:
    def test_initial_burst_available(self):
        bucket = TokenBucket(rate=100.0, burst=50.0)
        assert bucket.consume(50.0, now=0.0) == 50.0

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=100.0, burst=50.0)
        bucket.consume(50.0, now=0.0)
        assert bucket.consume(100.0, now=1.0) == pytest.approx(50.0)  # capped by burst? no: refill 100 capped at 50

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=30.0)
        bucket.consume(30.0, now=0.0)
        assert bucket.peek(now=10.0) == pytest.approx(30.0)

    def test_partial_grant(self):
        bucket = TokenBucket(rate=10.0, burst=10.0)
        assert bucket.consume(25.0, now=0.0) == pytest.approx(10.0)

    def test_time_must_not_go_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.consume(0.5, now=5.0)
        with pytest.raises(ValueError):
            bucket.consume(0.1, now=4.0)

    def test_negative_amount_rejected(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ValueError):
            bucket.consume(-1.0, now=0.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestTimeUntil:
    def test_zero_when_available(self):
        bucket = TokenBucket(rate=10.0, burst=10.0)
        assert bucket.time_until(5.0, now=0.0) == 0.0

    def test_wait_time(self):
        bucket = TokenBucket(rate=10.0, burst=10.0)
        bucket.consume(10.0, now=0.0)
        assert bucket.time_until(5.0, now=0.0) == pytest.approx(0.5)

    def test_impossible_amount(self):
        bucket = TokenBucket(rate=10.0, burst=10.0)
        with pytest.raises(ValueError):
            bucket.time_until(11.0, now=0.0)


class TestRateProperty:
    @given(
        rate=st.floats(min_value=1.0, max_value=1e6),
        span=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=100)
    def test_long_run_rate_never_exceeded(self, rate, span):
        """Granted tokens over [0, span] never exceed burst + rate*span."""
        bucket = TokenBucket(rate=rate, burst=rate)  # 1 s of burst
        granted = 0.0
        steps = 20
        for i in range(steps):
            now = span * (i + 1) / steps
            granted += bucket.consume(rate * span, now=now)
        assert granted <= rate + rate * span + 1e-6 * rate * span

    @given(rate=st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=50)
    def test_steady_state_throughput_matches_rate(self, rate):
        # Burst of one second: draining once per second sustains `rate`.
        bucket = TokenBucket(rate=rate, burst=rate)
        granted = 0.0
        for i in range(1, 101):
            granted += bucket.consume(2 * rate, now=float(i))
        assert granted == pytest.approx(100 * rate, rel=0.02)

    def test_small_burst_caps_periodic_draining(self):
        # With burst << rate x interval, the bucket, drained at that
        # interval, can only deliver one burst per period.
        bucket = TokenBucket(rate=100.0, burst=10.0)
        granted = sum(bucket.consume(1000.0, now=float(i)) for i in range(1, 11))
        assert granted == pytest.approx(10 * 10.0)
