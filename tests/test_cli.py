"""CLI tests."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, TESTBEDS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune", "hpclab"])
        assert args.optimizer == "gd"
        assert args.duration == 300.0

    def test_tune_options(self):
        args = build_parser().parse_args(
            ["tune", "xsede", "--optimizer", "bo", "--duration", "60", "--seed", "3"]
        )
        assert (args.optimizer, args.duration, args.seed) == ("bo", 60.0, 3)

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "fig07"])
        assert (args.experiment, args.out, args.quick) == ("fig07", None, False)

    def test_trace_options(self):
        args = build_parser().parse_args(["trace", "table1", "--out", "x.jsonl", "--quick"])
        assert (args.out, args.quick) == ("x.jsonl", True)


class TestCommands:
    def test_list_testbeds(self, capsys):
        assert main(["list-testbeds"]) == 0
        out = capsys.readouterr().out
        for name in TESTBEDS:
            assert name in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "HPCLab" in capsys.readouterr().out

    def test_tune_unknown_testbed(self, capsys):
        assert main(["tune", "nowhere"]) == 2
        assert "unknown testbed" in capsys.readouterr().out

    def test_tune_short_run(self, capsys):
        assert main(["tune", "hpclab", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "steady throughput" in out
        assert "Gbps" in out

    def test_export_table1(self, tmp_path, capsys):
        out = tmp_path / "t1.json"
        assert main(["export", "table1", "--out", str(out)]) == 0
        import json

        parsed = json.loads(out.read_text())
        assert len(parsed["rows"]) == 4

    def test_export_unknown(self, capsys):
        assert main(["export", "fig99"]) == 2

    def test_trace_unknown_experiment(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_trace_fig07_writes_jsonl_and_summary(self, tmp_path, capsys):
        out = tmp_path / "fig07.trace.jsonl"
        assert main(["trace", "fig07", "--quick", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "optimizer.decision" in captured  # event summary after the table
        from repro.obs import read_events

        events = read_events(out)
        assert events, "trace file must not be empty"
        assert any(ev.type == "session.start" for ev in events)

    def test_every_experiment_module_importable(self):
        import importlib

        for module_path in EXPERIMENTS.values():
            module = importlib.import_module(module_path)
            assert hasattr(module, "main")
            assert hasattr(module, "run")
