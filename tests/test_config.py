"""Configuration defaults tests."""

from __future__ import annotations

import math

from repro import config


class TestSimConfig:
    def test_defaults_match_paper(self):
        cfg = config.DEFAULT_CONFIG
        # Paper §4: 3 s local / 5 s wide-area sample transfers.
        assert cfg.local_sample_interval == 3.0
        assert cfg.wide_sample_interval == 5.0

    def test_with_replaces_only_given_fields(self):
        cfg = config.DEFAULT_CONFIG.with_(dt=0.05)
        assert cfg.dt == 0.05
        assert cfg.measurement_jitter == config.DEFAULT_CONFIG.measurement_jitter

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            config.DEFAULT_CONFIG.dt = 1.0  # type: ignore[misc]


class TestPaperConstants:
    def test_loss_penalty(self):
        assert config.DEFAULT_LOSS_PENALTY_B == 10.0

    def test_concurrency_base(self):
        assert config.DEFAULT_CONCURRENCY_BASE_K == 1.02

    def test_k_concave_limit_is_about_100(self):
        # Paper: K=1.02 keeps strict concavity up to n ~ 101.
        assert 2.0 / math.log(config.DEFAULT_CONCURRENCY_BASE_K) > 100

    def test_linear_penalty_examples(self):
        assert config.LINEAR_PENALTY_C_LOW == 0.01
        assert config.LINEAR_PENALTY_C_HIGH == 0.02

    def test_bo_constants(self):
        assert config.BO_RANDOM_SAMPLES == 3
        assert config.BO_OBSERVATION_WINDOW == 20

    def test_hc_threshold(self):
        assert config.HILL_CLIMBING_THRESHOLD == 0.03
