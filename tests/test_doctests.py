"""Run the doctest examples embedded in library docstrings.

The examples in user-facing docstrings (unit helpers, token bucket,
RNG streams) are part of the documented contract; this keeps them
honest.
"""

from __future__ import annotations

import doctest

import pytest

import repro.sim.rng
import repro.storage.throttle
import repro.units

MODULES = [repro.units, repro.storage.throttle, repro.sim.rng]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
