"""Unit-helper tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestSizes:
    def test_decimal_prefixes(self):
        assert units.KB == 1_000
        assert units.MB == 1_000_000
        assert units.GB == 1_000_000_000
        assert units.TB == 1_000_000_000_000

    def test_binary_prefixes(self):
        assert units.KiB == 1024
        assert units.MiB == 1024**2
        assert units.GiB == 1024**3
        assert units.TiB == 1024**4

    def test_size_constructors(self):
        assert units.kilobytes(2) == 2000
        assert units.megabytes(1.5) == 1.5e6
        assert units.gigabytes(3) == 3e9
        assert units.kibibytes(1) == 1024
        assert units.mebibytes(2) == 2 * 1024**2
        assert units.gibibytes(0.5) == 0.5 * 1024**3

    def test_binary_vs_decimal_gap(self):
        # The classic 7.4% gap at GB scale.
        assert units.GiB / units.GB == pytest.approx(1.0737, abs=1e-3)


class TestRates:
    def test_rate_constructors(self):
        assert units.kbps(5) == 5e3
        assert units.mbps(10) == 1e7
        assert units.gbps(40) == 4e10

    def test_rate_conversions_roundtrip(self):
        assert units.bps_to_gbps(units.gbps(2.5)) == pytest.approx(2.5)
        assert units.bps_to_mbps(units.mbps(125)) == pytest.approx(125)

    def test_bytes_bits_roundtrip(self):
        assert units.bytes_per_second(8e9) == 1e9
        assert units.bits_per_second(1e9) == 8e9

    @given(st.floats(min_value=1.0, max_value=1e12, allow_nan=False))
    def test_byte_bit_inverse(self, rate):
        assert units.bits_per_second(units.bytes_per_second(rate)) == pytest.approx(rate)


class TestTimes:
    def test_time_constructors(self):
        assert units.milliseconds(30) == pytest.approx(0.03)
        assert units.microseconds(100) == pytest.approx(1e-4)
        assert units.minutes(2) == 120
        assert units.hours(1.5) == 5400


class TestFormatting:
    def test_format_rate_scales(self):
        assert units.format_rate(2.5e9) == "2.50 Gbps"
        assert units.format_rate(3e6) == "3.00 Mbps"
        assert units.format_rate(9e3) == "9.00 Kbps"
        assert units.format_rate(12) == "12.00 bps"

    def test_format_rate_precision(self):
        assert units.format_rate(1e9, precision=0) == "1 Gbps"

    def test_format_size_scales(self):
        assert units.format_size(2**30) == "1.00 GiB"
        assert units.format_size(5 * 2**20) == "5.00 MiB"
        assert units.format_size(100) == "100 B"
        assert units.format_size(3 * 2**40) == "3.00 TiB"

    def test_format_duration_bands(self):
        assert units.format_duration(0.5) == "500.0ms"
        assert units.format_duration(12.3) == "12.3s"
        assert units.format_duration(90) == "1m30s"
        assert units.format_duration(3725) == "1h2m5s"

    def test_format_duration_negative(self):
        assert units.format_duration(-90) == "-1m30s"
