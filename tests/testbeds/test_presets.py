"""Testbed preset tests — Table 1 fidelity and analytic expectations."""

from __future__ import annotations

import pytest

from repro.testbeds.presets import (
    TABLE1,
    campus_cluster,
    emulab,
    emulab_fig4,
    emulab_high_optimal,
    emulab_io_bound,
    hpclab,
    stampede2_comet,
    xsede,
)
from repro.units import Gbps, Mbps, milliseconds


class TestTable1Fidelity:
    def test_emulab_row(self):
        tb = emulab_fig4()
        assert tb.path.rtt == pytest.approx(milliseconds(30))
        assert tb.bottleneck == "Network"

    def test_xsede_row(self):
        tb = xsede()
        assert tb.path.capacity == 10 * Gbps
        assert tb.path.rtt == pytest.approx(milliseconds(40))
        assert tb.bottleneck == "Disk Read"

    def test_hpclab_row(self):
        tb = hpclab()
        assert tb.path.capacity == 40 * Gbps
        assert tb.path.rtt == pytest.approx(milliseconds(0.1))
        assert tb.bottleneck == "Disk Write"

    def test_campus_row(self):
        tb = campus_cluster()
        assert tb.source.nic.capacity == 10 * Gbps
        assert tb.bottleneck == "NIC"

    def test_table1_has_four_rows(self):
        assert len(TABLE1()) == 4


class TestAnalyticOptima:
    def test_emulab_fig4_optimum_is_10(self):
        assert emulab_fig4().optimal_concurrency() == 10

    def test_emulab_high_optimum_is_48(self):
        assert emulab_high_optimal().optimal_concurrency() == 48

    def test_emulab_io_bound_optimum_is_48(self):
        assert emulab_io_bound().optimal_concurrency() == 48

    def test_hpclab_optimum_about_9(self):
        assert hpclab().optimal_concurrency() == 9

    def test_xsede_optimum_about_10(self):
        assert xsede().optimal_concurrency() == 10

    def test_campus_optimum_about_7(self):
        assert campus_cluster().optimal_concurrency() == 7

    def test_max_throughputs(self):
        assert hpclab().max_throughput() == pytest.approx(28 * Gbps)
        assert xsede().max_throughput() == pytest.approx(5.8 * Gbps)
        assert campus_cluster().max_throughput() == pytest.approx(10 * Gbps)
        assert emulab_fig4().max_throughput() == pytest.approx(100 * Mbps)

    def test_stampede2_comet_long_fat(self):
        tb = stampede2_comet()
        assert tb.path.rtt == pytest.approx(milliseconds(60))
        # Window cap ~2.2 Gbps: the parallelism-relevant regime.
        assert tb.tcp.stream_cap(tb.path.rtt) < 3 * Gbps

    def test_single_worker_rates_match_paper_fig1(self):
        # Fig 1a: concurrency 1 gives <8 Gbps in HPCLab, <2 in XSEDE.
        assert hpclab().per_worker_cap() < 8 * Gbps
        assert xsede().per_worker_cap() < 2 * Gbps


class TestIsolation:
    def test_fresh_instances_do_not_share_hosts(self):
        a, b = hpclab(), hpclab()
        assert a.source is not b.source
        assert a.source.storage is not b.source.storage

    def test_sessions_of_one_instance_share_hosts(self):
        tb = hpclab()
        from repro.transfer.dataset import uniform_dataset

        s1 = tb.new_session(uniform_dataset(5))
        s2 = tb.new_session(uniform_dataset(5))
        assert s1.source is s2.source
        assert s1.name != s2.name

    def test_describe_mentions_bottleneck(self):
        assert "NIC" in campus_cluster().describe()


class TestParameterisedEmulab:
    def test_custom_throttle(self):
        tb = emulab(link_bps=500 * Mbps, per_process_bps=25 * Mbps)
        assert tb.optimal_concurrency() == 20

    def test_io_bound_variant_has_lossless_headroom(self):
        tb = emulab_io_bound()
        # The link (2G) is twice the storage aggregate: no congestion.
        assert tb.path.capacity == pytest.approx(2e9)
        assert tb.source.storage.aggregate_read_bps == pytest.approx(1e9)
