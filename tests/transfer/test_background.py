"""Background-traffic generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import emulab_fig4
from repro.transfer.background import OnOffTraffic
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams


def make_rig():
    tb = emulab_fig4()
    engine = SimulationEngine(dt=0.1)
    net = FluidTransferNetwork(engine)
    return tb, engine, net


class TestOnOffCycle:
    def test_phases_alternate(self):
        tb, engine, net = make_rig()
        bg = OnOffTraffic(engine=engine, network=net, testbed=tb, on_time=10.0, off_time=10.0)
        bg.start()
        engine.run_for(45.0)
        kinds = [k for _, k in bg.transitions]
        assert kinds[:4] == ["on", "off", "on", "off"]

    def test_phase_durations(self):
        tb, engine, net = make_rig()
        bg = OnOffTraffic(engine=engine, network=net, testbed=tb, on_time=15.0, off_time=5.0)
        bg.start()
        engine.run_for(60.0)
        times = [t for t, _ in bg.transitions]
        gaps = np.diff(times)
        assert gaps[0] == pytest.approx(15.0, abs=0.01)  # first ON phase
        assert gaps[1] == pytest.approx(5.0, abs=0.01)  # first OFF phase

    def test_initial_delay(self):
        tb, engine, net = make_rig()
        bg = OnOffTraffic(engine=engine, network=net, testbed=tb)
        bg.start(initial_delay=20.0)
        engine.run_for(10.0)
        assert not bg.active
        engine.run_for(15.0)
        assert bg.active

    def test_stop_finishes_current_phase(self):
        # stop() during ON is graceful: the load persists until the
        # phase's scheduled end, then never comes back.
        tb, engine, net = make_rig()
        bg = OnOffTraffic(engine=engine, network=net, testbed=tb, on_time=20.0)
        bg.start()
        engine.run_for(5.0)
        assert bg.active
        bg.stop()
        assert bg.active  # current phase keeps running
        engine.run_for(20.0)  # past the phase boundary at t=20
        assert not bg.active
        engine.run_for(200.0)
        assert not bg.active  # never comes back
        assert [k for _, k in bg.transitions] == ["on", "off"]

    def test_stop_during_off_cancels_pending_event(self):
        tb, engine, net = make_rig()
        bg = OnOffTraffic(engine=engine, network=net, testbed=tb, on_time=10.0, off_time=10.0)
        bg.start()
        engine.run_for(15.0)  # mid first OFF phase
        assert not bg.active
        bg.stop()
        # The queued bg-on wake-up is cancelled outright, not left to
        # fire as a no-op.
        assert bg._pending is None
        live = [e for e in engine._queue if e.name == "bg-on" and not e.cancelled]
        assert not live
        engine.run_for(100.0)
        assert not bg.active
        assert [k for _, k in bg.transitions] == ["on", "off"]

    def test_jittered_phases_vary(self):
        tb, engine, net = make_rig()
        bg = OnOffTraffic(
            engine=engine,
            network=net,
            testbed=tb,
            on_time=10.0,
            off_time=10.0,
            jitter=0.3,
            rng=np.random.default_rng(0),
        )
        bg.start()
        engine.run_for(120.0)
        gaps = np.diff([t for t, _ in bg.transitions])
        assert gaps.std() > 0.5


class TestImpactOnForeground:
    def test_foreground_throughput_dips_during_on(self):
        tb, engine, net = make_rig()
        fg = tb.new_session(
            uniform_dataset(100), params=TransferParams(concurrency=10), repeat=True
        )
        net.add_session(fg)
        bg = OnOffTraffic(
            engine=engine, network=net, testbed=tb, concurrency=10, on_time=30.0, off_time=30.0
        )
        bg.start(initial_delay=30.0)

        engine.run_for(30.0)
        alone = fg.monitor.take(concurrency=10).throughput_bps
        engine.run_for(30.0)  # background ON
        contended = fg.monitor.take(concurrency=10).throughput_bps
        engine.run_for(30.0)  # background OFF
        recovered = fg.monitor.take(concurrency=10).throughput_bps

        assert contended < 0.7 * alone
        assert recovered > 0.85 * alone
