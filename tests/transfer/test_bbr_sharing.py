"""Weighted (BBR-vs-Cubic) bandwidth-sharing tests in the executor."""

from __future__ import annotations

import pytest

from repro.network.tcp import BBR, CUBIC
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import emulab_fig4
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams


def run_pair(tcp_a, tcp_b, n=10, seconds=30.0):
    tb = emulab_fig4()
    engine = SimulationEngine(dt=0.1)
    net = FluidTransferNetwork(engine)
    a = tb.new_session(
        uniform_dataset(50), params=TransferParams(concurrency=n), repeat=True, tcp=tcp_a
    )
    b = tb.new_session(
        uniform_dataset(50), params=TransferParams(concurrency=n), repeat=True, tcp=tcp_b
    )
    net.add_session(a)
    net.add_session(b)
    engine.run_for(seconds)
    return (
        a.monitor.take(concurrency=n).throughput_bps,
        b.monitor.take(concurrency=n).throughput_bps,
    )


class TestWeightedSharing:
    def test_cubic_pair_splits_evenly(self):
        ra, rb = run_pair(CUBIC, CUBIC)
        assert ra == pytest.approx(rb, rel=0.05)

    def test_bbr_beats_cubic_at_saturated_link(self):
        cubic_rate, bbr_rate = run_pair(CUBIC, BBR)
        assert bbr_rate > cubic_rate * 1.2

    def test_bbr_advantage_bounded_by_weight(self):
        cubic_rate, bbr_rate = run_pair(CUBIC, BBR)
        # The weighted fair share caps BBR's edge at its weight ratio.
        assert bbr_rate / cubic_rate <= BBR.aggressiveness / CUBIC.aggressiveness + 0.15

    def test_bbr_pair_splits_evenly(self):
        ra, rb = run_pair(BBR, BBR)
        assert ra == pytest.approx(rb, rel=0.05)

    def test_total_capacity_unchanged(self):
        cubic_rate, bbr_rate = run_pair(CUBIC, BBR)
        assert cubic_rate + bbr_rate <= 100e6 * 1.01

    def test_unsaturated_link_no_advantage(self):
        # 2+2 workers at 10 Mbps each: 40 Mbps << 100 Mbps capacity.
        cubic_rate, bbr_rate = run_pair(CUBIC, BBR, n=2)
        assert bbr_rate == pytest.approx(cubic_rate, rel=0.05)
