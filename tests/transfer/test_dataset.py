"""Dataset and file-queue tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfer.dataset import (
    Dataset,
    large_dataset,
    mixed_dataset,
    small_dataset,
    uniform_dataset,
)
from repro.units import GB, GiB, KiB, MB, MiB


class TestDataset:
    def test_uniform_main_workload(self):
        ds = uniform_dataset(1000, 1 * GB)
        assert ds.file_count == 1000
        assert ds.total_bytes == pytest.approx(1e12)
        assert ds.mean_file_bytes == pytest.approx(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.array([]))
        with pytest.raises(ValueError):
            Dataset(np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            Dataset(np.ones((2, 2)))
        with pytest.raises(ValueError):
            uniform_dataset(0)
        with pytest.raises(ValueError):
            uniform_dataset(10, 0)

    def test_str_contains_name(self):
        assert "many-small" in str(uniform_dataset(10, 1 * MB, name="many-small"))


class TestGenerators:
    def test_small_dataset_bounds(self):
        ds = small_dataset(total_bytes=1 * GiB, seed=1)
        assert np.all(ds.sizes >= 1 * KiB)
        assert np.all(ds.sizes <= 10 * MiB)
        assert ds.total_bytes >= 1 * GiB

    def test_large_dataset_bounds(self):
        ds = large_dataset(total_bytes=20 * GiB, seed=1)
        assert np.all(ds.sizes >= 100 * MiB)
        assert np.all(ds.sizes <= 10 * GiB)
        assert ds.total_bytes >= 20 * GiB

    def test_total_not_wildly_overshot(self):
        ds = small_dataset(total_bytes=1 * GiB, seed=2)
        assert ds.total_bytes <= 1 * GiB + 10 * MiB  # one extra file at most

    def test_seed_reproducible(self):
        a = small_dataset(total_bytes=512 * MiB, seed=5)
        b = small_dataset(total_bytes=512 * MiB, seed=5)
        assert np.array_equal(a.sizes, b.sizes)

    def test_seed_matters(self):
        a = small_dataset(total_bytes=512 * MiB, seed=5)
        b = small_dataset(total_bytes=512 * MiB, seed=6)
        assert not np.array_equal(a.sizes[: min(a.file_count, b.file_count)],
                                  b.sizes[: min(a.file_count, b.file_count)])

    def test_mixed_is_union(self):
        mixed = mixed_dataset(seed=0)
        small = small_dataset(seed=0)
        large = large_dataset(seed=1)
        assert mixed.file_count == small.file_count + large.file_count
        assert mixed.total_bytes == pytest.approx(small.total_bytes + large.total_bytes)

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_small_dataset_property(self, seed):
        ds = small_dataset(total_bytes=256 * MiB, seed=seed)
        assert np.all((ds.sizes >= 1 * KiB) & (ds.sizes <= 10 * MiB))


class TestFileQueue:
    def test_pop_order_and_exhaustion(self):
        ds = Dataset(np.array([1.0, 2.0, 3.0]))
        q = ds.queue()
        assert q.pop() == (1.0, 0.0)
        assert q.pop() == (2.0, 0.0)
        assert q.pop() == (3.0, 0.0)
        assert q.pop() is None
        assert q.exhausted

    def test_remaining_files(self):
        q = Dataset(np.array([1.0, 2.0])).queue()
        assert q.remaining_files == 2
        q.pop()
        assert q.remaining_files == 1

    def test_push_back_keeps_progress(self):
        q = Dataset(np.array([10.0])).queue()
        size, done = q.pop()
        q.push_back(size, 4.0)
        assert q.pop() == (10.0, 4.0)

    def test_push_back_validation(self):
        q = Dataset(np.array([10.0])).queue()
        with pytest.raises(ValueError):
            q.push_back(10.0, 11.0)
        with pytest.raises(ValueError):
            q.push_back(10.0, -1.0)

    def test_repeat_cycles(self):
        q = Dataset(np.array([1.0, 2.0])).queue(repeat=True)
        values = [q.pop()[0] for _ in range(5)]
        assert values == [1.0, 2.0, 1.0, 2.0, 1.0]
        assert not q.exhausted

    def test_returned_files_served_first(self):
        q = Dataset(np.array([1.0, 2.0])).queue()
        q.pop()
        q.push_back(1.0, 0.5)
        assert q.pop() == (1.0, 0.5)
        assert q.pop() == (2.0, 0.0)

    @given(
        sizes=st.lists(st.floats(min_value=1.0, max_value=1e9), min_size=1, max_size=30)
    )
    @settings(max_examples=60)
    def test_conservation(self, sizes):
        """Total bytes handed out equals the dataset total."""
        q = Dataset(np.array(sizes)).queue()
        total = 0.0
        while (item := q.pop()) is not None:
            size, done = item
            total += size - done
        assert total == pytest.approx(sum(sizes))
