"""Fluid executor tests: joint arbitration across resources and sessions."""

from __future__ import annotations

import pytest

from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic
from repro.network.path import build_dumbbell
from repro.sim.engine import SimulationEngine
from repro.storage.parallel_fs import ParallelFileSystem
from repro.testbeds.presets import emulab_fig4, hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import Gbps, MB, Mbps


def run_session(testbed, n, seconds=20.0, dataset=None):
    engine = SimulationEngine(dt=0.1)
    net = FluidTransferNetwork(engine)
    session = testbed.new_session(
        dataset or uniform_dataset(50), params=TransferParams(concurrency=n), repeat=True
    )
    net.add_session(session)
    engine.run_for(seconds)
    return session, engine, net


class TestSingleBottlenecks:
    def test_per_process_cap_binds_at_low_concurrency(self):
        tb = emulab_fig4()  # 10 Mbps per process
        session, _, _ = run_session(tb, n=1)
        sample = session.monitor.take(concurrency=1)
        assert sample.throughput_bps == pytest.approx(10 * Mbps, rel=0.05)

    def test_link_binds_at_high_concurrency(self):
        tb = emulab_fig4()
        session, _, _ = run_session(tb, n=20)
        sample = session.monitor.take(concurrency=20)
        assert sample.throughput_bps <= 100 * Mbps * 1.01
        assert sample.throughput_bps >= 90 * Mbps

    def test_storage_aggregate_binds(self):
        tb = hpclab()  # write aggregate 28G
        session, _, _ = run_session(tb, n=16)
        sample = session.monitor.take(concurrency=16)
        assert sample.throughput_bps <= 28 * Gbps
        assert sample.throughput_bps >= 22 * Gbps

    def test_loss_appears_only_past_saturation(self):
        below, _, _ = run_session(emulab_fig4(), n=8)
        above, _, _ = run_session(emulab_fig4(), n=24)
        assert below.monitor.take(concurrency=8).loss_rate < 0.005
        assert above.monitor.take(concurrency=24).loss_rate > 0.02


class TestConservation:
    def test_throughput_never_exceeds_any_capacity(self):
        for tb_factory in (emulab_fig4, hpclab):
            tb = tb_factory()
            session, _, _ = run_session(tb, n=32)
            sample = session.monitor.take(concurrency=32)
            cap = min(
                tb.path.capacity,
                tb.source.nic.capacity,
                tb.destination.nic.capacity,
                tb.source.storage.aggregate_read_bps,
                tb.destination.storage.aggregate_write_bps,
            )
            assert sample.throughput_bps <= cap * 1.01

    def test_bytes_conserved_to_completion(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        dataset = uniform_dataset(5, 10 * MB)  # 50 MB total
        session = tb.new_session(dataset, params=TransferParams(concurrency=5))
        net.add_session(session)
        engine.run_for(60.0)
        assert not session.active
        assert session.total_good_bytes == pytest.approx(50 * MB, rel=1e-3)

    def test_finished_session_removed(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        session = tb.new_session(uniform_dataset(2, 1 * MB), params=TransferParams(concurrency=2))
        net.add_session(session)
        engine.run_for(30.0)
        assert session not in net.sessions


class TestMultiSessionSharing:
    def test_equal_sessions_share_equally(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        sessions = [
            tb.new_session(uniform_dataset(50), params=TransferParams(concurrency=10), repeat=True)
            for _ in range(2)
        ]
        for s in sessions:
            net.add_session(s)
        engine.run_for(30.0)
        rates = [s.monitor.take(concurrency=10).throughput_bps for s in sessions]
        assert rates[0] == pytest.approx(rates[1], rel=0.05)
        assert sum(rates) >= 90 * Mbps

    def test_share_proportional_to_flow_count(self):
        """At a saturated link, session share follows its stream count."""
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        small = tb.new_session(uniform_dataset(50), params=TransferParams(concurrency=10), repeat=True)
        big = tb.new_session(uniform_dataset(50), params=TransferParams(concurrency=30), repeat=True)
        net.add_session(small)
        net.add_session(big)
        engine.run_for(30.0)
        r_small = small.monitor.take(concurrency=10).throughput_bps
        r_big = big.monitor.take(concurrency=30).throughput_bps
        assert r_big / r_small == pytest.approx(3.0, rel=0.15)

    def test_parallelism_multiplies_flow_share(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        # Same concurrency; one uses parallelism 3. Per-process I/O is
        # the throttle, so extra streams only matter at the link.
        plain = tb.new_session(uniform_dataset(50), params=TransferParams(concurrency=8), repeat=True)
        striped = tb.new_session(
            uniform_dataset(50), params=TransferParams(concurrency=8, parallelism=3), repeat=True
        )
        net.add_session(plain)
        net.add_session(striped)
        engine.run_for(30.0)
        r_plain = plain.monitor.take(concurrency=8).throughput_bps
        r_striped = striped.monitor.take(concurrency=8).throughput_bps
        # Striped session holds 24 of 32 flows but is I/O-capped at 80 Mbps.
        assert r_striped > r_plain

    def test_late_joiner_takes_share(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        first = tb.new_session(uniform_dataset(50), params=TransferParams(concurrency=10), repeat=True)
        net.add_session(first)
        engine.run_for(20.0)
        alone = first.monitor.take(concurrency=10).throughput_bps
        second = tb.new_session(uniform_dataset(50), params=TransferParams(concurrency=10), repeat=True)
        net.add_session(second)
        engine.run_for(20.0)
        shared = first.monitor.take(concurrency=10).throughput_bps
        assert shared < alone * 0.7

    def test_departure_frees_capacity(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        stay = tb.new_session(uniform_dataset(50), params=TransferParams(concurrency=10), repeat=True)
        leave = tb.new_session(uniform_dataset(50), params=TransferParams(concurrency=10), repeat=True)
        net.add_session(stay)
        net.add_session(leave)
        engine.run_for(20.0)
        stay.monitor.take(concurrency=10)
        leave.finished_at = engine.now
        net.remove_session(leave)
        engine.run_for(20.0)
        after = stay.monitor.take(concurrency=10).throughput_bps
        assert after >= 90 * Mbps

    def test_duplicate_add_rejected(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        s = tb.new_session(uniform_dataset(5), repeat=True)
        net.add_session(s)
        with pytest.raises(ValueError):
            net.add_session(s)


class TestCpuOverhead:
    def test_oversubscription_reduces_per_worker_cap(self):
        storage = ParallelFileSystem(
            per_process_read_bps=1 * Gbps,
            per_process_write_bps=1 * Gbps,
            aggregate_read_bps=100 * Gbps,
            aggregate_write_bps=100 * Gbps,
        )
        from repro.hosts.cpu import CpuModel
        from repro.testbeds.base import Testbed

        src = DataTransferNode(
            "s", storage=storage, nic=Nic(100 * Gbps), cpu=CpuModel(cores=4, oversubscription_penalty=1.0)
        )
        dst = DataTransferNode(
            "d",
            storage=ParallelFileSystem(
                per_process_read_bps=1 * Gbps,
                per_process_write_bps=1 * Gbps,
                aggregate_read_bps=100 * Gbps,
                aggregate_write_bps=100 * Gbps,
            ),
            nic=Nic(100 * Gbps),
            cpu=CpuModel(cores=4, oversubscription_penalty=1.0),
        )
        tb = Testbed(
            name="cpu-test",
            source=src,
            destination=dst,
            path=build_dumbbell(100 * Gbps, 0.001),
            sample_interval=3.0,
            bottleneck="CPU",
        )
        few, _, _ = run_session(tb, n=4)
        many, _, _ = run_session(tb, n=16)
        per_worker_few = few.monitor.take(concurrency=4).per_worker_bps
        per_worker_many = many.monitor.take(concurrency=16).per_worker_bps
        assert per_worker_many < per_worker_few * 0.6


class TestEquilibriumEpochCache:
    """ISSUE 9: epoch-keyed reuse of the converged waterfill allocation.

    Steady-state steps must skip the demand-cap/waterfill/loss pipeline
    entirely, and every input change must bump an epoch so the cache
    can never serve a stale equilibrium — especially to adaptive jumps,
    which replay the memoized pair without recomputation.
    """

    def steady_setup(self, adaptive: bool = False):
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine, batched=True, adaptive=adaptive)
        # 1 GB files at a 100 Mbps bottleneck: nothing completes inside
        # these short runs, so demand stays frozen after the initial
        # assignment scan.
        session = emulab_fig4().new_session(
            uniform_dataset(50), params=TransferParams(concurrency=10), repeat=True
        )
        net.add_session(session)
        return engine, net, session

    def test_adaptive_requires_batched_executor(self):
        engine = SimulationEngine(dt=0.1)
        with pytest.raises(ValueError):
            FluidTransferNetwork(engine, batched=False, adaptive=True)

    def test_steady_state_steps_skip_the_waterfill(self):
        engine, net, _ = self.steady_setup()
        prof = engine.enable_profiling()
        engine.run_for(20.0)
        recomputes = prof.counts.get("waterfill", 0)
        hits = prof.counts.get("equilibrium_cache", 0)
        assert recomputes + hits == prof.fluid_steps
        # The initial assignment (and spawn-gap expiries) cost a few
        # recomputes; after that every step is an epoch hit.
        assert hits > prof.fluid_steps * 0.8
        assert recomputes < prof.fluid_steps * 0.2

    def test_demand_epoch_bumped_by_crash_and_reassignment(self):
        # The initial add_session assignment predates the hook on
        # purpose (no cache exists yet); what matters is every change
        # *after* the first equilibrium is memoized.
        engine, net, session = self.steady_setup()
        engine.run_for(1.0)
        before = net._demand_epoch
        session.crash_worker(0)  # drops a file: demand changed
        assert net._demand_epoch == before + 1
        engine.run_for(0.5)  # next step's scan refills the idle worker
        assert net._demand_epoch >= before + 2

    def test_link_epoch_bumped_by_loss_burst(self):
        from repro.faults import FaultInjector
        from repro.faults.plan import FaultPlan, LossBurst
        from repro.sim.rng import RngStreams

        engine, net, session = self.steady_setup()
        plan = FaultPlan((LossBurst(at=1.0, duration=2.0, loss=0.05),))
        FaultInjector(engine, net, plan, streams=RngStreams(3)).arm()
        before = net._link_epoch
        engine.run_for(5.0)
        # One bump at burst start, one at recovery.
        assert net._link_epoch == before + 2

    def test_burst_losses_reach_adaptive_jumps(self):
        from repro.faults import FaultInjector
        from repro.faults.plan import FaultPlan, LossBurst
        from repro.sim.rng import RngStreams

        # Under adaptive stepping the equilibrium is replayed from the
        # cache across whole jumps; a missed link-epoch bump would keep
        # serving pre-burst losses.  Sample the session's loss inside
        # the burst window and after recovery.
        engine, net, session = self.steady_setup(adaptive=True)
        plan = FaultPlan((LossBurst(at=2.0, duration=2.0, loss=0.05),))
        FaultInjector(engine, net, plan, streams=RngStreams(3)).arm()
        seen = []
        engine.schedule_at(3.0, lambda: seen.append(session.current_loss))
        engine.schedule_at(7.0, lambda: seen.append(session.current_loss))
        engine.run_for(8.0)
        inside, after = seen
        assert inside >= 0.05
        assert after < inside - 0.04
