"""Throughput monitor tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.transfer.metrics import IntervalSample, ThroughputMonitor


class TestIntervalSample:
    def test_per_worker(self):
        s = IntervalSample(duration=1.0, throughput_bps=10e9, loss_rate=0.0, concurrency=5)
        assert s.per_worker_bps == pytest.approx(2e9)

    def test_per_worker_zero_concurrency(self):
        s = IntervalSample(duration=1.0, throughput_bps=1.0, loss_rate=0.0, concurrency=0)
        assert s.per_worker_bps == 0.0


class TestMonitorAccounting:
    def test_throughput_from_bytes(self):
        mon = ThroughputMonitor(tail_fraction=1.0)
        for _ in range(10):
            mon.record(good_bytes=1e6, sent_bytes=1e6, lost_bytes=0.0, dt=0.1)
        sample = mon.take(concurrency=2)
        assert sample.duration == pytest.approx(1.0)
        assert sample.throughput_bps == pytest.approx(1e7 * 8)

    def test_loss_fraction(self):
        mon = ThroughputMonitor(tail_fraction=1.0)
        mon.record(good_bytes=90.0, sent_bytes=100.0, lost_bytes=10.0, dt=1.0)
        assert mon.take(concurrency=1).loss_rate == pytest.approx(0.1)

    def test_take_resets(self):
        mon = ThroughputMonitor()
        mon.record(1e6, 1e6, 0.0, 1.0)
        mon.take(concurrency=1)
        empty = mon.take(concurrency=1)
        assert empty.duration == 0.0
        assert empty.throughput_bps == 0.0

    def test_elapsed_property(self):
        mon = ThroughputMonitor()
        mon.record(1.0, 1.0, 0.0, 0.5)
        mon.record(1.0, 1.0, 0.0, 0.5)
        assert mon.elapsed == pytest.approx(1.0)

    def test_params_carried_through(self):
        mon = ThroughputMonitor()
        mon.record(1.0, 1.0, 0.0, 1.0)
        s = mon.take(concurrency=4, parallelism=2, pipelining=8)
        assert (s.concurrency, s.parallelism, s.pipelining) == (4, 2, 8)

    def test_invalid_tail_fraction(self):
        with pytest.raises(ValueError):
            ThroughputMonitor(tail_fraction=0.0)
        with pytest.raises(ValueError):
            ThroughputMonitor(tail_fraction=1.5)


class TestTailMeasurement:
    def test_tail_skips_rampup(self):
        """Early low-rate steps are excluded from the measured window."""
        mon = ThroughputMonitor(tail_fraction=0.5)
        # 5 s of ramp at 0 B/s then 5 s at 1 MB/s.
        for _ in range(50):
            mon.record(0.0, 0.0, 0.0, 0.1)
        for _ in range(50):
            mon.record(1e5, 1e5, 0.0, 0.1)
        sample = mon.take(concurrency=1)
        assert sample.throughput_bps == pytest.approx(1e6 * 8, rel=0.05)
        # But the reported duration covers the full interval.
        assert sample.duration == pytest.approx(10.0)

    def test_full_fraction_averages_everything(self):
        mon = ThroughputMonitor(tail_fraction=1.0)
        for _ in range(50):
            mon.record(0.0, 0.0, 0.0, 0.1)
        for _ in range(50):
            mon.record(1e5, 1e5, 0.0, 0.1)
        sample = mon.take(concurrency=1)
        assert sample.throughput_bps == pytest.approx(0.5e6 * 8, rel=0.05)


class TestJitter:
    def test_jitter_perturbs_throughput(self):
        rng = np.random.default_rng(0)
        values = []
        for _ in range(50):
            mon = ThroughputMonitor()
            mon.record(1e6, 1e6, 0.0, 1.0)
            values.append(mon.take(concurrency=1, rng=rng, jitter=0.05).throughput_bps)
        values = np.array(values)
        assert values.std() > 0
        assert values.mean() == pytest.approx(8e6, rel=0.05)

    def test_no_rng_means_exact(self):
        mon = ThroughputMonitor()
        mon.record(1e6, 1e6, 0.0, 1.0)
        assert mon.take(concurrency=1).throughput_bps == pytest.approx(8e6)

    def test_jitter_never_negative(self):
        rng = np.random.default_rng(7)
        for _ in range(200):
            mon = ThroughputMonitor()
            mon.record(1e3, 1e3, 0.0, 1.0)
            s = mon.take(concurrency=1, rng=rng, jitter=1.0)  # extreme jitter
            assert s.throughput_bps >= 0.0
            assert 0.0 <= s.loss_rate <= 1.0
