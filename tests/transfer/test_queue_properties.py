"""Property-based conservation tests for FileQueue and session accounting.

These drive the queue and the session through randomized churn
(pop / push_back / hold / release, worker crashes, stalls, concurrency
resizes) and check the invariants the rest of the stack leans on:

* no file is ever lost or duplicated — completed + queued + in-flight
  always equals the dataset's file count;
* no byte is ever lost or double-counted — progress parked in the queue,
  progress on in-flight files, and completed files always sum to the
  session's ``total_good_bytes``;
* a held file (retry backoff outstanding) keeps the queue non-exhausted,
  so a session can never silently complete while a requeue timer runs;
* requeued files come back LIFO with their progress and attempt count
  intact (the documented ``FileQueue.pop`` contract).

Requires ``hypothesis`` (skipped when unavailable, e.g. minimal CI
images without the dev extras).
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.hosts.dtn import DataTransferNode
from repro.network.path import build_dumbbell
from repro.storage.parallel_fs import throttled_fs
from repro.transfer.dataset import Dataset, FileQueue
from repro.transfer.session import TransferParams, TransferSession
from repro.units import Gbps, Mbps


# ---------------------------------------------------------------------------
# FileQueue churn.
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_queue_conserves_files_and_bytes_under_churn(data):
    """Random pop/push_back/hold/release churn against a reference model.

    Integer file sizes and integer progress keep every comparison exact.
    """
    n = data.draw(st.integers(1, 10), label="files")
    sizes = data.draw(
        st.lists(st.integers(1, 10**6), min_size=n, max_size=n), label="sizes"
    )
    q = FileQueue(np.asarray(sizes, dtype=float))

    # Reference model: the queue's contents as plain lists.
    cursor = 0  # fresh files handed out so far
    returned: list[tuple[float, float, int]] = []  # push_back stack (LIFO)
    held: list[tuple[float, float, int]] = []  # hold()-parked files
    outstanding: list[tuple[float, float, int]] = []  # popped, in our hands
    moved = 0.0  # progress recorded via push_back done increments

    def check_invariants() -> None:
        assert q.remaining_files == len(returned) + len(held) + (n - cursor)
        assert q.exhausted == (q.remaining_files == 0)
        if held:
            # A held file is pending work: the queue must not report done.
            assert not q.exhausted

    n_ops = data.draw(st.integers(5, 40), label="n_ops")
    for _ in range(n_ops):
        choices = ["pop"]
        if outstanding:
            choices += ["push_back", "hold"]
        if held:
            choices.append("release")
        op = data.draw(st.sampled_from(choices))

        if op == "pop":
            item = q.pop()
            if returned:
                # Documented contract: returned files come back LIFO,
                # progress and attempt count intact, ahead of fresh files.
                size, done, attempts = returned.pop()
                assert item == (size, done)
                assert q.last_attempts == attempts
                outstanding.append((size, done, attempts))
            elif cursor < n:
                assert item == (float(sizes[cursor]), 0.0)
                assert q.last_attempts == 0
                outstanding.append((float(sizes[cursor]), 0.0, 0))
                cursor += 1
            else:
                # Nothing poppable; held files are the only remaining work.
                assert item is None
                assert q.remaining_files == len(held)
        elif op == "push_back":
            idx = data.draw(st.integers(0, len(outstanding) - 1))
            size, done, attempts = outstanding.pop(idx)
            new_done = float(data.draw(st.integers(int(done), int(size))))
            failed = data.draw(st.booleans())
            new_attempts = attempts + 1 if failed else attempts
            moved += new_done - done
            q.push_back(size, new_done, new_attempts)
            returned.append((size, new_done, new_attempts))
        elif op == "hold":
            idx = data.draw(st.integers(0, len(outstanding) - 1))
            held.append(outstanding.pop(idx))
            q.hold()
        else:  # release: the backoff timer fired, requeue the file
            idx = data.draw(st.integers(0, len(held) - 1))
            size, done, attempts = held.pop(idx)
            q.release()
            q.push_back(size, done, attempts)
            returned.append((size, done, attempts))

        check_invariants()

    # Drain: release every held file, then pop the queue dry.  The
    # multiset of files and the byte totals must match the model exactly.
    for size, done, attempts in held:
        q.release()
        q.push_back(size, done, attempts)
        returned.append((size, done, attempts))
    held.clear()

    drained: list[tuple[float, float]] = []
    while (item := q.pop()) is not None:
        drained.append(item)
    assert q.exhausted

    expected = sorted((s, d) for s, d, _ in returned)
    expected += sorted((float(s), 0.0) for s in sizes[cursor:])
    assert sorted(drained) == sorted(expected)

    # Byte conservation: un-transferred bytes across every bucket equal
    # the dataset total minus the progress pushed back during churn.
    left = sum(s - d for s, d in drained) + sum(s - d for s, d, _ in outstanding)
    assert left == float(sum(sizes)) - moved


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 8),
    popped=st.integers(1, 8),
    held_count=st.integers(1, 8),
)
def test_exhausted_never_fires_with_held_files(n, popped, held_count):
    """However many files are popped, holding any of them pins the queue open."""
    popped = min(popped, n)
    held_count = min(held_count, popped)
    q = FileQueue(np.full(n, 100.0))
    items = [q.pop() for _ in range(popped)]
    for _ in range(held_count):
        q.hold()
    # Pop everything else dry: still not exhausted while holds are out.
    while q.pop() is not None:
        pass
    assert not q.exhausted
    assert q.remaining_files == held_count
    for size, done in items[:held_count]:
        q.release()
        q.push_back(size, done)
    while q.pop() is not None:
        pass
    assert q.exhausted


# ---------------------------------------------------------------------------
# Session accounting churn.
# ---------------------------------------------------------------------------


def make_session(n_files: int, file_bytes: float, concurrency: int) -> TransferSession:
    storage = throttled_fs(100 * Mbps, 10 * Gbps)
    src = DataTransferNode("src", storage=storage)
    dst = DataTransferNode("dst", storage=throttled_fs(100 * Mbps, 10 * Gbps))
    dataset = Dataset(np.full(n_files, float(file_bytes)))
    return TransferSession(
        name="s",
        source=src,
        destination=dst,
        path=build_dumbbell(1 * Gbps, 0.03),
        queue=dataset.queue(repeat=False),
        params=TransferParams(concurrency=concurrency),
    )


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_session_conserves_files_and_bytes_under_fault_churn(data):
    """Crashes, stalls, resizes, and steps never lose a file or a byte."""
    n_files = data.draw(st.integers(2, 8), label="files")
    file_bytes = 1000.0
    concurrency = data.draw(st.integers(1, 4), label="concurrency")
    s = make_session(n_files, file_bytes, concurrency)

    def check_invariants() -> None:
        in_flight = int(s.has_file.sum())
        assert s.files_completed + s.queue.remaining_files + in_flight == n_files
        # Every good byte is parked somewhere: completed files, in-flight
        # progress, or progress riding on requeued files.
        parked = (
            s.files_completed * file_bytes
            + float(s.file_done[s.has_file].sum())
            + sum(done for _, done, _ in s.queue._returned)
        )
        assert parked == pytest.approx(s.total_good_bytes, abs=1e-6)
        assert np.all(s.attempts >= 0)

    now = 0.0
    n_ops = data.draw(st.integers(5, 25), label="n_ops")
    for _ in range(n_ops):
        op = data.draw(
            st.sampled_from(["step", "step", "step", "crash", "stall", "resize"])
        )
        workers = s.rates.size
        if op == "step":
            dt = data.draw(st.floats(0.05, 2.0, allow_nan=False))
            rate = data.draw(st.sampled_from([8e2, 8e3, 8e4]))
            loss = data.draw(st.sampled_from([0.0, 0.0, 0.01]))
            s.step(dt=dt, targets=np.full(workers, rate), loss_rate=loss, now=now)
            now += dt
        elif op == "crash":
            s.crash_worker(data.draw(st.integers(0, workers - 1)))
        elif op == "stall":
            s.stall_worker(
                data.draw(st.integers(0, workers - 1)),
                data.draw(st.floats(0.0, 3.0, allow_nan=False)),
            )
        else:
            s.set_concurrency(data.draw(st.integers(1, 6)))
        check_invariants()

    # Run the session to completion: every file must land exactly once.
    for _ in range(10_000):
        if not s.active:
            break
        s.step(dt=1.0, targets=np.full(s.rates.size, 8e4), loss_rate=0.0, now=now)
        now += 1.0
    assert not s.active
    assert s.files_completed == n_files
    assert s.queue.remaining_files == 0
    assert not s.has_file.any()
    assert s.total_good_bytes == pytest.approx(n_files * file_bytes, abs=1e-6)
