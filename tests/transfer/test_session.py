"""Transfer session tests: worker lifecycle, gaps, progress accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hosts.dtn import DataTransferNode
from repro.network.path import build_dumbbell
from repro.storage.parallel_fs import throttled_fs
from repro.transfer.dataset import Dataset
from repro.transfer.session import TransferParams, TransferSession
from repro.units import GB, Gbps, Mbps


def make_session(sizes=None, params=TransferParams(), repeat=False, rtt=0.03):
    storage = throttled_fs(100 * Mbps, 10 * Gbps)
    src = DataTransferNode("src", storage=storage)
    dst = DataTransferNode("dst", storage=throttled_fs(100 * Mbps, 10 * Gbps))
    dataset = Dataset(np.asarray(sizes if sizes is not None else [1 * GB] * 10, dtype=float))
    return TransferSession(
        name="s",
        source=src,
        destination=dst,
        path=build_dumbbell(1 * Gbps, rtt),
        queue=dataset.queue(repeat=repeat),
        params=params,
    )


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransferParams(concurrency=0)
        with pytest.raises(ValueError):
            TransferParams(parallelism=-1)
        with pytest.raises(ValueError):
            TransferParams(pipelining=0)

    def test_total_streams(self):
        assert TransferParams(concurrency=5, parallelism=4).total_streams == 20

    def test_with_(self):
        p = TransferParams(concurrency=2).with_(parallelism=3)
        assert p.concurrency == 2 and p.parallelism == 3

    def test_numpy_integers_coerced_to_int(self):
        # Optimizers hand back np.int64; the params must store built-in
        # ints so fingerprints, cache keys, and JSON never see numpy types.
        p = TransferParams(
            concurrency=np.int64(8), parallelism=np.int32(4), pipelining=np.int64(2)
        )
        assert type(p.concurrency) is int and p.concurrency == 8
        assert type(p.parallelism) is int and p.parallelism == 4
        assert type(p.pipelining) is int and p.pipelining == 2
        assert type(p.total_streams) is int

    def test_numpy_params_round_trip_through_jsonl(self, tmp_path):
        # A params change produced by an optimizer (np.int64 values) must
        # survive trace export: JSON encoding and read-back both work and
        # reproduce the same integers.
        from repro.obs.events import SessionParamsChange
        from repro.obs.exporters import JsonlExporter, read_events
        from repro.obs.tracer import use_tracing

        s = make_session(params=TransferParams(concurrency=2))
        target = tmp_path / "trace.jsonl"
        with JsonlExporter(target) as exporter, use_tracing(exporter):
            s.set_params(
                TransferParams(concurrency=np.int64(6), parallelism=np.int64(3))
            )
        events = [e for e in read_events(target) if isinstance(e, SessionParamsChange)]
        assert len(events) == 1
        assert events[0].concurrency == 6 and type(events[0].concurrency) is int
        assert events[0].parallelism == 3 and type(events[0].parallelism) is int


class TestWorkerLifecycle:
    def test_initial_workers_match_concurrency(self):
        s = make_session(params=TransferParams(concurrency=4))
        assert s.rates.size == 4
        assert s.has_file.sum() == 4

    def test_new_workers_pay_startup_gap(self):
        s = make_session(params=TransferParams(concurrency=1))
        s.set_concurrency(3)
        assert np.all(s.gap_left[1:] > 0)

    def test_shrink_returns_files_with_progress(self):
        s = make_session(sizes=[100.0] * 5, params=TransferParams(concurrency=3))
        s.file_done[2] = 40.0
        before = s.queue.remaining_files
        s.set_concurrency(1)
        assert s.rates.size == 1
        assert s.queue.remaining_files == before + 2
        # Progress preserved on requeue.
        items = [s.queue.pop() for _ in range(2)]
        assert (100.0, 40.0) in items

    def test_more_workers_than_files(self):
        s = make_session(sizes=[100.0, 100.0], params=TransferParams(concurrency=5))
        assert s.has_file.sum() == 2

    def test_grow_then_shrink_conserves_bytes(self):
        s = make_session(sizes=[100.0] * 4, params=TransferParams(concurrency=2))
        s.set_concurrency(4)
        s.set_concurrency(1)
        remaining = 0.0
        while (item := s.queue.pop()) is not None:
            remaining += item[0] - item[1]
        in_flight = float((s.file_size - s.file_done)[s.has_file].sum())
        assert remaining + in_flight == pytest.approx(400.0)


class TestStep:
    def test_progress_at_rate(self):
        s = make_session(sizes=[1 * GB], params=TransferParams(concurrency=1))
        s.gap_left[:] = 0.0
        s.rates[:] = 8e8  # 100 MB/s
        s.step(dt=1.0, targets=np.array([8e8]), loss_rate=0.0, now=0.0)
        assert s.file_done[0] == pytest.approx(1e8, rel=0.01)

    def test_gap_blocks_progress(self):
        s = make_session(sizes=[1 * GB], params=TransferParams(concurrency=1))
        s.gap_left[:] = 5.0
        s.rates[:] = 8e8
        s.step(dt=1.0, targets=np.array([8e8]), loss_rate=0.0, now=0.0)
        assert s.file_done[0] == 0.0
        assert s.gap_left[0] == pytest.approx(4.0)

    def test_loss_reduces_goodput(self):
        s = make_session(sizes=[1 * GB], params=TransferParams(concurrency=1))
        s.gap_left[:] = 0.0
        s.rates[:] = 8e8
        s.step(dt=1.0, targets=np.array([8e8]), loss_rate=0.1, now=0.0)
        assert s.file_done[0] == pytest.approx(0.9e8, rel=0.01)

    def test_file_completion_cascades(self):
        """A fast worker finishes several small files within one step."""
        s = make_session(sizes=[1000.0] * 20, params=TransferParams(concurrency=1), rtt=0.0)
        s.gap_left[:] = 0.0
        s.rates[:] = 8e4  # 10 KB/s -> 10 files/s
        s.step(dt=1.0, targets=np.array([8e4]), loss_rate=0.0, now=0.0)
        assert s.files_completed >= 8

    def test_completion_sets_finished(self):
        s = make_session(sizes=[100.0], params=TransferParams(concurrency=1))
        s.gap_left[:] = 0.0
        s.rates[:] = 8e8
        s.step(dt=1.0, targets=np.array([8e8]), loss_rate=0.0, now=5.0)
        assert not s.active
        assert s.finished_at == pytest.approx(6.0)

    def test_on_complete_callback(self):
        s = make_session(sizes=[100.0], params=TransferParams(concurrency=1))
        done = []
        s.on_complete = done.append
        s.gap_left[:] = 0.0
        s.rates[:] = 8e8
        s.step(dt=1.0, targets=np.array([8e8]), loss_rate=0.0, now=0.0)
        assert done == [s]

    def test_monitor_accumulates(self):
        s = make_session(sizes=[1 * GB], params=TransferParams(concurrency=1))
        s.gap_left[:] = 0.0
        s.rates[:] = 8e8
        s.step(dt=1.0, targets=np.array([8e8]), loss_rate=0.0, now=0.0)
        sample = s.monitor.take(concurrency=1)
        assert sample.throughput_bps == pytest.approx(8e8, rel=0.01)

    def test_process_seconds_counts_both_hosts(self):
        """Each live worker is a process on the source *and* the
        destination, so one step of n workers costs 2*n*dt."""
        s = make_session(params=TransferParams(concurrency=3))
        s.step(dt=1.0, targets=np.full(3, 8e6), loss_rate=0.0, now=0.0)
        s.step(dt=0.5, targets=np.full(3, 8e6), loss_rate=0.0, now=1.0)
        assert s.process_seconds == pytest.approx(2 * 3 * 1.5)

    def test_total_good_bytes_tracks(self):
        s = make_session(sizes=[1 * GB], params=TransferParams(concurrency=1))
        s.gap_left[:] = 0.0
        s.rates[:] = 8e8
        for i in range(3):
            s.step(dt=1.0, targets=np.array([8e8]), loss_rate=0.0, now=float(i))
        assert s.total_good_bytes == pytest.approx(3e8, rel=0.01)


class TestPerFileGap:
    def test_pipelining_amortises_control_rtts(self):
        s1 = make_session(params=TransferParams(concurrency=1, pipelining=1), rtt=0.06)
        s8 = make_session(params=TransferParams(concurrency=1, pipelining=8), rtt=0.06)
        open_cost = (
            s1.source.storage.open_latency + s1.destination.storage.open_latency
        )
        assert s1.per_file_gap() == pytest.approx(2 * 0.06 + open_cost)
        assert s8.per_file_gap() == pytest.approx(2 * 0.06 / 8 + open_cost)

    def test_gap_positive_even_with_deep_pipelining(self):
        s = make_session(params=TransferParams(concurrency=1, pipelining=64))
        assert s.per_file_gap() > 0.0


class TestInstantaneousRate:
    def test_sums_worker_rates(self):
        s = make_session(params=TransferParams(concurrency=3))
        s.rates[:] = [1e6, 2e6, 3e6]
        assert s.instantaneous_rate == pytest.approx(6e6)
